//! PowerPC-405 cycle-cost model.
//!
//! Woolcano's base CPU is the PowerPC 405 hard core embedded in the Xilinx
//! Virtex-4 FX (§I). The PPC405 is a simple 5-stage in-order scalar core:
//! most integer operations are single-cycle, multiplies take a few cycles,
//! divides are long-latency, and there is **no hardware FPU** — floating
//! point is software-emulated. The per-opcode costs below follow the
//! PPC405 user manual's latencies for the integer core and typical
//! soft-float library costs for floating point (tens to hundreds of
//! cycles — the asymmetry behind the paper's float-kernel speedups).
//!
//! The same cost table is what the PivPav estimator uses for the *software*
//! side of its HW/SW comparison, so estimation and measurement are
//! consistent by construction (as they are in the paper, where both derive
//! from profiling data).

use jitise_base::SimTime;
use jitise_ir::{BinOp, ExtFunc, InstKind, Opcode, UnOp};

/// Core clock of the PPC405 in the Virtex-4 FX100 (speed grade -10).
pub const PPC405_CLOCK_HZ: u64 = 300_000_000;

/// Cycle-cost model for one CPU implementation.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Core clock in Hz (converts cycles to time).
    pub clock_hz: u64,
    /// Extra dispatch cycles per interpreted instruction (used by the
    /// VM-overhead model; zero when modeling native/JIT-compiled code).
    pub dispatch_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ppc405()
    }
}

impl CostModel {
    /// The Woolcano base CPU model.
    pub fn ppc405() -> CostModel {
        CostModel {
            clock_hz: PPC405_CLOCK_HZ,
            dispatch_overhead: 0,
        }
    }

    /// Cycles for one dynamic instruction.
    pub fn inst_cycles(&self, kind: &InstKind) -> u64 {
        let base = match kind {
            InstKind::Bin(op, ..) => match op {
                BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => 1,
                BinOp::Shl | BinOp::LShr | BinOp::AShr => 1,
                BinOp::Mul => 4,
                BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => 35,
                // The PPC405 has NO hardware FPU: floating point is
                // software-emulated (integer sequences), which is precisely
                // why float kernels gain so much from hardware CIs in the
                // paper (whetstone: 17.78x ceiling).
                BinOp::FAdd | BinOp::FSub => 40,
                BinOp::FMul => 45,
                BinOp::FDiv => 150,
            },
            InstKind::Un(op, ..) => match op {
                UnOp::Neg | UnOp::Not => 1,
                UnOp::Trunc | UnOp::ZExt | UnOp::SExt => 1,
                UnOp::FNeg => 8,
                UnOp::FpToSi | UnOp::SiToFp => 30,
                UnOp::FpExt | UnOp::FpTrunc => 15,
            },
            InstKind::Cmp(op, ..) => {
                if op.is_float() {
                    25
                } else {
                    1
                }
            }
            InstKind::Select(..) => 2,
            // Cache-hit latencies; the PPC405 D-cache is 2-cycle load-use.
            InstKind::Load(..) => 2,
            InstKind::Store(..) => 2,
            InstKind::Gep { .. } => 1,
            InstKind::Alloca(..) => 2,
            InstKind::GlobalAddr(..) => 1,
            // Call overhead (prologue/epilogue, link register).
            InstKind::Call(..) => 8,
            InstKind::CallExt(ef, ..) => Self::ext_cycles(*ef),
            // Phis are resolved at block entry; charge the move.
            InstKind::Phi(..) => 1,
            // Custom instruction cost is charged by the CustomHandler, not
            // here; the base cost is the FCB/APU issue overhead.
            InstKind::Custom(..) => 0,
        };
        base + self.dispatch_overhead
    }

    /// Cycles for a libm call on this core (soft-float polynomial
    /// evaluation on an integer-only CPU — hundreds of cycles each).
    pub fn ext_cycles(f: ExtFunc) -> u64 {
        match f {
            ExtFunc::Fabs | ExtFunc::Floor => 20,
            ExtFunc::Sqrt => 250,
            ExtFunc::Sin | ExtFunc::Cos => 600,
            ExtFunc::Atan => 700,
            ExtFunc::Exp | ExtFunc::Log => 500,
            ExtFunc::Pow => 900,
        }
    }

    /// Cycles charged per taken control-flow transfer (branch resolution in
    /// the PPC405 pipeline).
    pub fn branch_cycles(&self) -> u64 {
        2 + self.dispatch_overhead
    }

    /// Software cycles for the flat opcode, used by the ISE estimator when
    /// pricing a candidate's software execution. Uses representative
    /// instances of each opcode class.
    pub fn opcode_cycles(&self, op: Opcode) -> u64 {
        use jitise_ir::Operand;
        let dummy = Operand::ci32(0);
        let kind = match op {
            Opcode::Bin(b) => InstKind::Bin(b, dummy, dummy),
            Opcode::Un(u) => InstKind::Un(u, dummy),
            Opcode::Cmp(c) => InstKind::Cmp(c, dummy, dummy),
            Opcode::Select => InstKind::Select(dummy, dummy, dummy),
            Opcode::Load => InstKind::Load(dummy),
            Opcode::Store => InstKind::Store(dummy, dummy),
            Opcode::Gep => InstKind::Gep {
                base: dummy,
                index: dummy,
                elem_bytes: 4,
            },
            Opcode::Alloca => InstKind::Alloca(4),
            Opcode::GlobalAddr => InstKind::GlobalAddr(jitise_ir::GlobalId(0)),
            Opcode::Call => InstKind::Call(jitise_ir::FuncId(0), vec![]),
            Opcode::CallExt => InstKind::CallExt(ExtFunc::Sqrt, vec![]),
            Opcode::Phi => InstKind::Phi(vec![]),
            Opcode::Custom => InstKind::Custom(0, vec![]),
        };
        self.inst_cycles(&kind)
    }

    /// Converts a cycle count to simulated time at this core's clock.
    pub fn cycles_to_time(&self, cycles: u64) -> SimTime {
        // ns = cycles * 1e9 / hz, computed in u128 to avoid overflow.
        let ns = (cycles as u128 * 1_000_000_000u128) / self.clock_hz as u128;
        SimTime::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::Operand;

    #[test]
    fn relative_costs_sane() {
        let m = CostModel::ppc405();
        let add = m.inst_cycles(&InstKind::Bin(
            BinOp::Add,
            Operand::ci32(0),
            Operand::ci32(0),
        ));
        let mul = m.inst_cycles(&InstKind::Bin(
            BinOp::Mul,
            Operand::ci32(0),
            Operand::ci32(0),
        ));
        let div = m.inst_cycles(&InstKind::Bin(
            BinOp::SDiv,
            Operand::ci32(0),
            Operand::ci32(0),
        ));
        assert!(add < mul && mul < div, "add < mul < div must hold");
        let fdiv = m.inst_cycles(&InstKind::Bin(
            BinOp::FDiv,
            Operand::cf64(0.0),
            Operand::cf64(0.0),
        ));
        assert!(fdiv > mul);
    }

    #[test]
    fn dispatch_overhead_applies() {
        let mut m = CostModel::ppc405();
        let base = m.opcode_cycles(Opcode::Bin(BinOp::Add));
        m.dispatch_overhead = 10;
        assert_eq!(m.opcode_cycles(Opcode::Bin(BinOp::Add)), base + 10);
    }

    #[test]
    fn cycles_to_time_at_300mhz() {
        let m = CostModel::ppc405();
        // 300 cycles at 300 MHz = 1 µs.
        assert_eq!(m.cycles_to_time(300), SimTime::from_micros(1));
        // 3e8 cycles = 1 s.
        assert_eq!(m.cycles_to_time(300_000_000), SimTime::from_secs(1));
    }

    #[test]
    fn ext_costs_ordered() {
        assert!(CostModel::ext_cycles(ExtFunc::Fabs) < CostModel::ext_cycles(ExtFunc::Sqrt));
        assert!(CostModel::ext_cycles(ExtFunc::Sqrt) < CostModel::ext_cycles(ExtFunc::Pow));
    }

    #[test]
    fn opcode_cycles_covers_all_classes() {
        let m = CostModel::ppc405();
        for op in [
            Opcode::Select,
            Opcode::Load,
            Opcode::Store,
            Opcode::Gep,
            Opcode::Alloca,
            Opcode::GlobalAddr,
            Opcode::Call,
            Opcode::CallExt,
            Opcode::Phi,
        ] {
            // Must not panic and must be bounded.
            assert!(m.opcode_cycles(op) <= 1_000);
        }
        assert_eq!(m.opcode_cycles(Opcode::Custom), 0);
    }
}
