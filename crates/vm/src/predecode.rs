//! Pre-decoded fast dispatch tier.
//!
//! The interpreter in [`crate::interp`] is the *reference semantics*: it
//! walks `InstKind` values, resolves `Operand`s through `Vec<Option<Value>>`
//! probing, re-derives operand types, scans for phis at every block entry,
//! and prices every instruction through a cost-model `match`. All of that
//! work is invariant across executions of the same block, so a long-lived
//! runtime (the adaptive loop runs the same module thousands of times) pays
//! it over and over.
//!
//! This module builds a [`PredecodedModule`] once per module — operands
//! resolved to dense register/arg/const slots ([`Src`]), phi parallel
//! copies compiled to per-incoming-edge move lists ([`Edge`]), per-block
//! cycle constants pre-summed for every cost that is not data-dependent —
//! and executes it with a flat dispatch loop.
//!
//! **Contract:** the fast tier is bit-identical to the interpreter in
//! results, `cycles`, `steps`, per-block [`crate::profile::Profile`]
//! contents, and error strings, including on trap paths (division by zero,
//! fuel exhaustion, out-of-bounds memory, undefined reads, missing phi
//! edges). The differential suites in `tests/equivalence.rs` and the
//! 14-app identity test enforce this; DESIGN.md §15 documents why the
//! accounting is tier-invariant.

use crate::cost::CostModel;
use crate::interp::{eval_ext, value_to_imm, Interpreter};
use crate::profile::BlockKey;
use crate::value::Value;
use jitise_base::{Error, Result};
use jitise_ir::passes::constfold::{fold_cmp, fold_float_bin, fold_int_bin, fold_un};
use jitise_ir::{
    BinOp, BlockId, CmpOp, ExtFunc, FuncId, Function, InstId, InstKind, Module, Operand,
    Terminator, Type, UnOp,
};

/// Execution tier of the [`Interpreter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VmTier {
    /// The reference `InstKind`-walking interpreter (default).
    #[default]
    Interp,
    /// Pre-decoded threaded dispatch over flat arrays. Bit-identical to
    /// [`VmTier::Interp`] in every observable; several times faster.
    Fast,
}

impl VmTier {
    /// Parses a tier name as used by CLI flags (`interp` / `fast`).
    pub fn parse(s: &str) -> Option<VmTier> {
        match s {
            "interp" => Some(VmTier::Interp),
            "fast" => Some(VmTier::Fast),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            VmTier::Interp => "interp",
            VmTier::Fast => "fast",
        }
    }
}

/// A pre-resolved operand: an index into the frame's unified slot array,
/// laid out as `[instruction results | arguments | constants]`. Arguments
/// and constants are materialized into the array at frame entry, so a read
/// is a single indexed load with **no** operand-kind dispatch (a per-read
/// `match` compiles to a data-dependent indirect branch that dominates the
/// dispatch loop's cost).
///
/// [`SRC_CHECKED`] marks the one exception: a register read whose
/// definedness could not be discharged at decode time (def neither earlier
/// in the same block nor in a strictly dominating block). Its payload is
/// the instruction's arena index, so the undefined-read diagnostic prints
/// the same `%id` as the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Src(u32);

/// High bit of [`Src`]: keep the interpreter's runtime definedness check.
const SRC_CHECKED: u32 = 1 << 31;

/// Slot for an argument operand out of the function's declared range: far
/// past any real slot array, so reading it panics on the bounds check just
/// like the interpreter's `args[i]` does (the verifier rejects such IR).
/// Checked-payload base marking an out-of-range `Arg` operand; the low
/// bits carry the original argument index so the runtime can reproduce the
/// interpreter's exact slice-index panic (`args[i]` on a short slice).
const SRC_OOB_ARG_BASE: u32 = 1 << 30;

/// [`Value::normalize`] compiled to data: integers shift left-then-right by
/// `sh` (arithmetic), floats round through f32 precision iff `f32r`. Built
/// once per decoded use of a `Type` so the dispatch loop never matches on
/// `Type` (each such match is another jump table).
#[derive(Debug, Clone, Copy)]
struct Norm {
    sh: u32,
    f32r: bool,
}

impl Norm {
    /// Float-only normalization (the `sh` half only applies to ints).
    #[inline(always)]
    fn apply_f(self, x: f64) -> f64 {
        if self.f32r {
            x as f32 as f64
        } else {
            x
        }
    }

    fn of(ty: Type) -> Norm {
        Norm {
            sh: wrap_shift(ty),
            f32r: ty == Type::F32,
        }
    }

    /// Exactly `v.normalize(ty)` for the `ty` this was built from.
    #[inline(always)]
    fn apply(self, v: Value) -> Value {
        match v {
            Value::I(x) => Value::I((x << self.sh) >> self.sh),
            Value::F(x) => Value::F(if self.f32r { x as f32 as f64 } else { x }),
        }
    }
}

/// The shift pair equivalent of `ty.sext(ty.trunc(v))`: shifting an i64
/// left by `64 - bits` then arithmetically right reproduces
/// truncate-then-sign-extend in two ALU ops. Zero (identity) for 64-bit and
/// width-0 types, matching [`Type::sext`]/[`Type::trunc`].
fn wrap_shift(ty: Type) -> u32 {
    let b = ty.bits();
    if b == 0 || b >= 64 {
        0
    } else {
        64 - b
    }
}

/// One compiled phi parallel-copy move: `reg[dst] = norm(read(src))`.
#[derive(Debug, Clone, Copy)]
struct PhiMove {
    dst: u32,
    norm: Norm,
    src: Src,
}

/// The compiled parallel copy for one incoming CFG edge.
#[derive(Debug, Clone)]
struct Edge {
    moves: Box<[PhiMove]>,
    /// Pre-formatted "phi has no incoming edge" error, hit at phi position
    /// `moves.len()` (phis before it still execute and charge steps, phis
    /// after it are never reached — exactly the interpreter's order).
    missing: Option<Box<str>>,
    /// Cycles the moves charge when the copy completes.
    cycles: u64,
}

/// A branch target: the destination block plus the index of the matching
/// parallel-copy edge in that block (`u32::MAX` when the destination has no
/// leading phis).
#[derive(Debug, Clone, Copy)]
struct Target {
    block: u32,
    edge: u32,
}

const NO_EDGE: u32 = u32::MAX;
/// `dst` sentinel for instructions without a result (stores).
const NO_DST: u32 = u32::MAX;

/// A decoded straight-line instruction.
#[derive(Debug, Clone)]
struct FastInst {
    /// Destination register slot, or [`NO_DST`].
    dst: u32,
    op: FastOp,
}

/// Decoded instruction payloads. Operand types that the interpreter
/// re-derives per execution (`verify::operand_ty`) are resolved here once.
#[derive(Debug, Clone)]
enum FastOp {
    /// Wrap-only integer binop (`add`/`sub`/`mul`/`and`/`or`/`xor`),
    /// specialized per op at decode time so the only run-time dispatch is
    /// the single `FastOp` discriminant jump: `fold_int_bin`'s inner
    /// `BinOp` and `Type` matches each cost an indirect branch per
    /// executed instruction, and integer binops are 30–90% of the dynamic
    /// mix on the bench apps.
    AddI {
        sh: u32,
        a: Src,
        b: Src,
    },
    SubI {
        sh: u32,
        a: Src,
        b: Src,
    },
    MulI {
        sh: u32,
        a: Src,
        b: Src,
    },
    AndI {
        sh: u32,
        a: Src,
        b: Src,
    },
    OrI {
        sh: u32,
        a: Src,
        b: Src,
    },
    XorI {
        sh: u32,
        a: Src,
        b: Src,
    },
    /// Shifts with the decode-time amount mask (`bits - 1`).
    ShlI {
        sh: u32,
        mask: u32,
        a: Src,
        b: Src,
    },
    LShrI {
        sh: u32,
        mask: u32,
        a: Src,
        b: Src,
    },
    AShrI {
        sh: u32,
        mask: u32,
        a: Src,
        b: Src,
    },
    /// Remaining integer binops (div/rem families, which trap on zero):
    /// generic [`fold_int_bin`] fallback keeps the exact trap semantics.
    BinI {
        op: BinOp,
        ty: Type,
        a: Src,
        b: Src,
    },
    /// Float binop specialized per op (`fold_float_bin`'s `BinOp` match is
    /// an indirect branch; whetstone's dynamic mix is >50% float binops).
    FAdd {
        norm: Norm,
        a: Src,
        b: Src,
    },
    FSub {
        norm: Norm,
        a: Src,
        b: Src,
    },
    FMul {
        norm: Norm,
        a: Src,
        b: Src,
    },
    FDiv {
        norm: Norm,
        a: Src,
        b: Src,
    },
    /// Any other float binop: generic fallback (panics in
    /// `fold_float_bin`'s `expect`, exactly like the interpreter).
    BinF {
        op: BinOp,
        norm: Norm,
        a: Src,
        b: Src,
    },
    Un {
        op: UnOp,
        ty: Type,
        src_ty: Type,
        a: Src,
    },
    /// Signed/equality integer compare, branchless: `enc` holds the
    /// boolean result for each [`std::cmp::Ordering`] of the sign-extended
    /// operands (bit 0 = Less, bit 1 = Equal, bit 2 = Greater), so one
    /// variant covers eq/ne/slt/sle/sgt/sge with no per-op dispatch. The
    /// original `op`/`src_ty` are kept for the non-integer-operand
    /// fallback, which defers to the interpreter's exact
    /// `value_to_imm` + `fold_cmp` path.
    CmpSI {
        enc: u32,
        sh: u32,
        op: CmpOp,
        src_ty: Type,
        a: Src,
        b: Src,
    },
    /// Unsigned integer compare; like [`FastOp::CmpSI`] but ordering the
    /// truncated unsigned operands (`s_sh` sign-extends first, `u_sh` then
    /// truncates, reproducing `fold_cmp`'s `ty.trunc(imm.as_i64())`).
    CmpUI {
        enc: u32,
        s_sh: u32,
        u_sh: u32,
        op: CmpOp,
        src_ty: Type,
        a: Src,
        b: Src,
    },
    /// Float compares and any future compare kinds: generic fallback.
    Cmp {
        op: CmpOp,
        src_ty: Type,
        a: Src,
        b: Src,
    },
    Select {
        norm: Norm,
        c: Src,
        a: Src,
        b: Src,
    },
    /// Integer load specialized to its byte width `N` (const-generic raw
    /// access in [`crate::mem::Memory::load_bytes`] lowers to one machine
    /// load; the generic path's `Type` match and variable-length copy both
    /// cost dispatch). `sh` sign-extends the raw bits like `Type::sext`.
    LoadI1 {
        sh: u32,
        p: Src,
    },
    LoadI2 {
        sh: u32,
        p: Src,
    },
    LoadI4 {
        sh: u32,
        p: Src,
    },
    LoadI8 {
        p: Src,
    },
    LoadF4 {
        p: Src,
    },
    LoadF8 {
        p: Src,
    },
    /// Width-less (`Void`-typed) loads: generic fallback.
    Load {
        ty: Type,
        p: Src,
    },
    /// Integer store at byte width `N`; `sh` truncates like `Type::trunc`
    /// (observable only for `i1`, whose single stored byte keeps one bit).
    /// A float value under an integer-typed store falls back to the
    /// generic path for the exact mismatch diagnostic.
    StoreI1 {
        sh: u32,
        val_ty: Type,
        v: Src,
        p: Src,
    },
    StoreI2 {
        sh: u32,
        val_ty: Type,
        v: Src,
        p: Src,
    },
    StoreI4 {
        sh: u32,
        val_ty: Type,
        v: Src,
        p: Src,
    },
    StoreI8 {
        val_ty: Type,
        v: Src,
        p: Src,
    },
    StoreF4 {
        val_ty: Type,
        v: Src,
        p: Src,
    },
    StoreF8 {
        val_ty: Type,
        v: Src,
        p: Src,
    },
    Store {
        val_ty: Type,
        v: Src,
        p: Src,
    },
    Gep {
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    Alloca {
        bytes: u32,
    },
    GlobalAddr {
        idx: usize,
    },
    Call {
        callee: u32,
        args: Box<[Src]>,
    },
    CallExt {
        f: ExtFunc,
        args: Box<[Src]>,
    },
    Custom {
        slot: u32,
        args: Box<[Src]>,
    },
    /// A phi below a non-phi instruction: traps when reached (the verifier
    /// rejects such functions, but the interpreter tolerates them until
    /// execution and so must this tier).
    PhiTrap,
    // ---- fused superinstructions (built by `try_fuse`) ----
    // Each fused variant executes two source instructions in one dispatch:
    // the producer's result is single-use, consumed by the very next
    // instruction in the same block through an unchecked slot read, so the
    // intermediate register write is elided entirely. Accounting stays per
    // source instruction: every arm bumps `steps` and re-checks the fuel
    // budget between the two halves, exactly where the interpreter would.
    FAddAdd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddMul {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddAnd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddOr {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddXor {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddSub1 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddSub2 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAddAShr1 {
        sh1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubAdd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubMul {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubAnd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubOr {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubXor {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubSub1 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubSub2 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FSubAShr1 {
        sh1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulAdd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulMul {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulAnd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulOr {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulXor {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulSub1 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulSub2 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FMulAShr1 {
        sh1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndAdd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndMul {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndAnd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndOr {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndXor {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndSub1 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndSub2 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAndAShr1 {
        sh1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrAdd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrMul {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrAnd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrOr {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrXor {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrSub1 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrSub2 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FOrAShr1 {
        sh1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorAdd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorMul {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorAnd {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorOr {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorXor {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorSub1 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorSub2 {
        sh1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FXorAShr1 {
        sh1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlAdd {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlMul {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlAnd {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlOr {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlXor {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlSub1 {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlSub2 {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FShlAShr1 {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrAdd {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrMul {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrAnd {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrOr {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrXor {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrSub1 {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrSub2 {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FAShrAShr1 {
        sh1: u32,
        mask1: u32,
        sh2: u32,
        mask2: u32,
        a: Src,
        b: Src,
        c: Src,
    },
    FFAddFAdd1 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFAddFAdd2 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFAddFMul1 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFAddFMul2 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFMulFAdd1 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFMulFAdd2 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFMulFMul1 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFMulFMul2 {
        n1: Norm,
        n2: Norm,
        a: Src,
        b: Src,
        c: Src,
    },
    FFAddStoreF8 {
        n1: Norm,
        a: Src,
        b: Src,
        p: Src,
    },
    FGepLoadI1 {
        sh2: u32,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepLoadI2 {
        sh2: u32,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepLoadI4 {
        sh2: u32,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepLoadI8 {
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepLoadF4 {
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepLoadF8 {
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepStoreI1 {
        sh2: u32,
        val_ty: Type,
        v: Src,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepStoreI2 {
        sh2: u32,
        val_ty: Type,
        v: Src,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepStoreI4 {
        sh2: u32,
        val_ty: Type,
        v: Src,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepStoreI8 {
        val_ty: Type,
        v: Src,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepStoreF4 {
        val_ty: Type,
        v: Src,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FGepStoreF8 {
        val_ty: Type,
        v: Src,
        base: Src,
        index: Src,
        elem_bytes: i64,
    },
    FCmpSISelect {
        enc: u32,
        sh1: u32,
        cop: CmpOp,
        src_ty: Type,
        n2: Norm,
        a: Src,
        b: Src,
        x: Src,
        y: Src,
    },
    FCmpUISelect {
        enc: u32,
        s_sh: u32,
        u_sh: u32,
        cop: CmpOp,
        src_ty: Type,
        n2: Norm,
        a: Src,
        b: Src,
        x: Src,
        y: Src,
    },
}

/// Decoded terminators, with pre-resolved targets/edges.
#[derive(Debug, Clone)]
enum FastTerm {
    Br(Target),
    CondBr {
        c: Src,
        t: Target,
        f: Target,
    },
    Switch {
        v: Src,
        /// Case table sorted by key for binary search, deduplicated keeping
        /// the first occurrence of each key (the interpreter's linear scan
        /// takes the first match). The scan-cost cycle charge still uses
        /// the original case count (pre-summed into `static_cycles`).
        cases: Box<[(i64, Target)]>,
        default: Target,
    },
    Ret(Option<Src>),
    /// Unterminated block (transient construction state); panics like
    /// [`jitise_ir::Block::terminator`] if ever executed.
    NoTerm,
}

/// One decoded basic block.
#[derive(Debug, Clone)]
struct FastBlock {
    /// Straight-line instructions (leading phis excluded — those live in
    /// [`Edge`] move lists).
    body: Box<[FastInst]>,
    /// Source body instruction count (fusion makes `body.len()` smaller
    /// than the number of dynamic instructions the block accounts for).
    body_insts: u32,
    /// Cycles with no data dependence, pre-summed: every body instruction's
    /// base cost plus the terminator's branch cost (including the switch
    /// case-scan penalty, which depends only on the case count). Only
    /// custom-instruction hardware cycles are added at run time.
    static_cycles: u64,
    term: FastTerm,
    /// Parallel-copy programs, one per (deduplicated) CFG predecessor.
    edges: Box<[Edge]>,
}

/// One decoded function.
#[derive(Debug, Clone)]
struct FastFunc {
    fid: FuncId,
    name: String,
    params_len: usize,
    /// Instruction-result slot count after liveness compaction (dedicated
    /// slots, then the shared block-local range). The frame's slot array is
    /// `num_regs` result slots, then `params_len` argument slots, then the
    /// materialized `consts` pool.
    num_regs: usize,
    /// Source instruction arena length (shape check for [`PredecodedModule::matches`]).
    insts_len: usize,
    /// Arena index behind each dedicated slot, for undefined-read
    /// diagnostics (`%id` must match the interpreter's).
    slot_ids: Box<[u32]>,
    /// Deduplicated constant operands, copied into the frame's slot array
    /// at entry so constant reads are plain indexed loads.
    consts: Box<[Value]>,
    /// Distinct register slots consulted by at least one [`SRC_CHECKED`]
    /// read. Frame entry resets exactly these `defined` flags instead of
    /// memsetting all `num_regs` of them — call-heavy apps enter large
    /// functions far more often than they take checked reads.
    checked_regs: Box<[u32]>,
    blocks: Vec<FastBlock>,
}

/// A module compiled for the fast tier. Build once per module (and cost
/// model) with [`PredecodedModule::build`], share across VM instances via
/// [`Interpreter::set_predecoded`].
#[derive(Debug, Clone)]
pub struct PredecodedModule {
    funcs: Vec<FastFunc>,
    clock_hz: u64,
    dispatch_overhead: u64,
}

impl PredecodedModule {
    /// Decodes every function of `m` under `cost`.
    pub fn build(m: &Module, cost: &CostModel) -> PredecodedModule {
        PredecodedModule {
            funcs: m
                .func_ids()
                .map(|fid| decode_func(m.func(fid), fid, cost))
                .collect(),
            clock_hz: cost.clock_hz,
            dispatch_overhead: cost.dispatch_overhead,
        }
    }

    /// Cheap sanity check that this representation was built from a module
    /// with the same shape and the same cost model. Not a full structural
    /// comparison — callers must pass the module it was built from.
    pub(crate) fn matches(&self, m: &Module, cost: &CostModel) -> bool {
        self.clock_hz == cost.clock_hz
            && self.dispatch_overhead == cost.dispatch_overhead
            && self.funcs.len() == m.func_ids().count()
            && m.func_ids().zip(&self.funcs).all(|(fid, pf)| {
                let f = m.func(fid);
                pf.name == f.name
                    && pf.insts_len == f.insts.len()
                    && pf.blocks.len() == f.blocks.len()
            })
    }
}

/// Immediate dominators of the reachable CFG (Cooper–Harvey–Kennedy),
/// indexed by block; `u32::MAX` marks unreachable blocks, the entry is its
/// own idom. Used only at decode time to discharge definedness checks.
fn compute_idom(f: &Function) -> Vec<u32> {
    const UNDEF: u32 = u32::MAX;
    let n = f.blocks.len();
    let mut idom = vec![UNDEF; n];
    if n == 0 {
        return idom;
    }
    let succs: Vec<Vec<u32>> = f
        .blocks
        .iter()
        .map(|b| match &b.term {
            Some(Terminator::Br(t)) => vec![t.0],
            Some(Terminator::CondBr(_, t, e)) => vec![t.0, e.0],
            Some(Terminator::Switch(_, cases, d)) => {
                cases.iter().map(|(_, t)| t.0).chain([d.0]).collect()
            }
            Some(Terminator::Ret(_)) | None => vec![],
        })
        .collect();
    // Reverse postorder over blocks reachable from the entry.
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut post: Vec<u32> = Vec::with_capacity(n);
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(top) = stack.last_mut() {
        let b = top.0 as usize;
        if top.1 < succs[b].len() {
            let s = succs[b][top.1];
            top.1 += 1;
            if state[s as usize] == 0 {
                state[s as usize] = 1;
                stack.push((s, 0));
            }
        } else {
            post.push(top.0);
            state[b] = 2;
            stack.pop();
        }
    }
    let rpo: Vec<u32> = post.iter().rev().copied().collect();
    let mut rpo_idx = vec![UNDEF; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_idx[b as usize] = i as u32;
    }
    fn intersect(idom: &[u32], rpo_idx: &[u32], mut a: u32, mut b: u32) -> u32 {
        while a != b {
            while rpo_idx[a as usize] > rpo_idx[b as usize] {
                a = idom[a as usize];
            }
            while rpo_idx[b as usize] > rpo_idx[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    }
    let preds = f.predecessors();
    idom[0] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = UNDEF;
            for &p in &preds[b as usize] {
                if idom[p.idx()] == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p.0
                } else {
                    intersect(&idom, &rpo_idx, new_idom, p.0)
                };
            }
            if new_idom != UNDEF && idom[b as usize] != new_idom {
                idom[b as usize] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Decode-time operand resolver. Maps every operand to a flat slot index:
/// instruction results get liveness-compacted slots, arguments map past
/// them, constants are interned into a per-function pool mapped past the
/// arguments. A register read is emitted check-free when its defining
/// instruction provably executes before every occurrence of the read — def
/// earlier in the same block, or def block strictly dominating the reading
/// block (for phi-incoming reads, which execute on the CFG edge: def block
/// dominating the predecessor). Everything else keeps the interpreter's
/// runtime undefined-read check ([`SRC_CHECKED`]).
///
/// **Slot compaction.** A value whose every read is provably in its own
/// block after the def (including reads by the terminator and by phi
/// parallel copies on edges leaving the block) is *block-local*: its slot
/// can be recycled as soon as its last read passes, and whole blocks can
/// share one local slot range because only one block executes at a time.
/// Everything else — cross-block values, checked-read targets (their
/// `defined` flag is observable), dead-arena reads — gets a dedicated slot
/// in `[0, dedicated)`. This keeps the frame's working set near the live
/// width of the function instead of its instruction count: a 10k-inst
/// function would otherwise drag a >150 KiB register file through the
/// cache on every call.
struct Resolver {
    idom: Vec<u32>,
    /// Block index holding each instruction (`u32::MAX` for dead arena
    /// slots never attached to a block).
    def_block: Vec<u32>,
    /// Whether executing the def's block guarantees the register is
    /// assigned. False for `Call` (the callee may return no value), for
    /// entry-block phis (unassigned on the initial, edge-less entry), and
    /// for phis below the lead span (they trap).
    surely: Vec<bool>,
    /// Frame slot for each instruction result (`u32::MAX` for slot-less
    /// arena entries that are neither written nor read).
    slot_of: Vec<u32>,
    /// Arena index displayed for each dedicated slot (undefined-read
    /// diagnostics print the interpreter's `%id`).
    slot_ids: Vec<u32>,
    /// Total result slots: dedicated ones, then the shared local range.
    num_slots: usize,
    /// Static read count per instruction result (body operands, terminator
    /// operands, reachable phi-incoming edge reads). Fusion requires
    /// exactly one.
    use_count: Vec<u32>,
    /// First argument slot (== `num_slots`).
    arg_base: u32,
    /// First constant slot (== `num_slots + params_len`).
    const_base: u32,
    /// Interned constant pool, keyed by payload bits for exact dedup.
    consts: Vec<Value>,
    const_ix: std::collections::HashMap<(bool, u64), u32>,
    /// Distinct registers emitted with [`SRC_CHECKED`], in first-use order.
    checked: Vec<u32>,
    checked_seen: Vec<bool>,
}

impl Resolver {
    fn build(f: &Function, leads: &[usize]) -> Resolver {
        let n = f.insts.len();
        let mut def_block = vec![u32::MAX; n];
        let mut def_pos = vec![usize::MAX; n];
        let mut surely = vec![false; n];
        for (bi, b) in f.blocks.iter().enumerate() {
            for (pos, &iid) in b.insts.iter().enumerate() {
                def_block[iid.0 as usize] = bi as u32;
                def_pos[iid.0 as usize] = pos;
                surely[iid.0 as usize] = match &f.inst(iid).kind {
                    InstKind::Call(..) | InstKind::Store(..) => false,
                    InstKind::Phi(_) => pos < leads[bi] && bi != 0,
                    _ => true,
                };
            }
        }
        let idom = compute_idom(f);
        let dominates = |a: u32, mut b: u32| loop {
            if a == b {
                return true;
            }
            let up = idom[b as usize];
            if up == b || up == u32::MAX {
                return false;
            }
            b = up;
        };

        // ---- use analysis (mirrors the decode walk exactly) ----
        // A value is block-local when every read is in its def block at a
        // position after the def; reads by the terminator sit at position
        // `len`, reads by parallel copies on leaving edges at `len + 1`.
        let mut used = vec![false; n];
        let mut use_count = vec![0u32; n];
        let mut dedicated = vec![false; n];
        let mut last_use = vec![-1i64; n];
        let mut local = vec![false; n];
        let preds = f.predecessors();
        {
            let mut record = |r: usize, bi: u32, pos: i64, proven: bool| {
                used[r] = true;
                use_count[r] += 1;
                if !proven || def_block[r] != bi {
                    dedicated[r] = true;
                } else if pos > last_use[r] {
                    last_use[r] = pos;
                }
            };
            for (bi, b) in f.blocks.iter().enumerate() {
                local.iter_mut().for_each(|d| *d = false);
                if bi != 0 {
                    for &iid in &b.insts[..leads[bi]] {
                        local[iid.0 as usize] = true;
                    }
                }
                for pos in leads[bi]..b.insts.len() {
                    let iid = b.insts[pos];
                    for op in f.inst(iid).operands() {
                        if let Operand::Inst(id) = op {
                            let r = id.0 as usize;
                            let db = def_block[r];
                            let proven = local[r]
                                || (surely[r]
                                    && db != u32::MAX
                                    && db != bi as u32
                                    && dominates(db, bi as u32));
                            record(r, bi as u32, pos as i64, proven);
                        }
                    }
                    if surely[iid.0 as usize] {
                        local[iid.0 as usize] = true;
                    }
                }
                if let Some(term) = &b.term {
                    for op in term.operands() {
                        if let Operand::Inst(id) = op {
                            let r = id.0 as usize;
                            let db = def_block[r];
                            let proven = local[r]
                                || (surely[r]
                                    && db != u32::MAX
                                    && db != bi as u32
                                    && dominates(db, bi as u32));
                            record(r, bi as u32, b.insts.len() as i64, proven);
                        }
                    }
                }
            }
            // Phi-incoming reads, walked per deduplicated real edge like
            // `decode_edge` (a missing incoming stops that edge's reads).
            for bid in f.block_ids() {
                if leads[bid.idx()] == 0 {
                    continue;
                }
                let mut seen: Vec<BlockId> = Vec::new();
                for &p in &preds[bid.idx()] {
                    if seen.contains(&p) {
                        continue;
                    }
                    seen.push(p);
                    let plen = f.block(p).insts.len();
                    for &iid in &f.block(bid).insts[..leads[bid.idx()]] {
                        let InstKind::Phi(incoming) = &f.inst(iid).kind else {
                            unreachable!("lead span contains only phis");
                        };
                        let Some((_, op)) = incoming.iter().find(|(bb, _)| *bb == p) else {
                            break;
                        };
                        if let Operand::Inst(id) = op {
                            let r = id.0 as usize;
                            let db = def_block[r];
                            let proven = surely[r] && db != u32::MAX && dominates(db, p.0);
                            record(r, p.0, plen as i64 + 1, proven);
                        }
                    }
                }
            }
        }

        // ---- slot assignment ----
        let mut slot_of = vec![u32::MAX; n];
        let mut slot_ids: Vec<u32> = Vec::new();
        for r in 0..n {
            if used[r] && dedicated[r] {
                slot_of[r] = slot_ids.len() as u32;
                slot_ids.push(r as u32);
            }
        }
        let d = slot_ids.len() as u32;
        let mut max_local = 0u32;
        let mut free: Vec<u32> = Vec::new();
        let mut freed = vec![false; n];
        for (bi, b) in f.blocks.iter().enumerate() {
            free.clear();
            let mut next = 0u32;
            // Lead phis are written by the edge copy on block entry, so
            // their slots live from position -1.
            for &iid in &b.insts[..leads[bi]] {
                let r = iid.0 as usize;
                if slot_of[r] == u32::MAX {
                    let k = free.pop().unwrap_or_else(|| {
                        next += 1;
                        next - 1
                    });
                    slot_of[r] = d + k;
                    if last_use[r] < 0 {
                        freed[r] = true;
                        free.push(k);
                    }
                }
            }
            for pos in leads[bi]..b.insts.len() {
                let iid = b.insts[pos];
                for op in f.inst(iid).operands() {
                    if let Operand::Inst(id) = op {
                        let r = id.0 as usize;
                        if slot_of[r] >= d
                            && slot_of[r] != u32::MAX
                            && last_use[r] == pos as i64
                            && !freed[r]
                        {
                            freed[r] = true;
                            free.push(slot_of[r] - d);
                        }
                    }
                }
                let has_result =
                    !matches!(f.inst(iid).kind, InstKind::Store(..) | InstKind::Phi(_));
                let r = iid.0 as usize;
                if has_result && slot_of[r] == u32::MAX {
                    let k = free.pop().unwrap_or_else(|| {
                        next += 1;
                        next - 1
                    });
                    slot_of[r] = d + k;
                    if last_use[r] <= pos as i64 {
                        freed[r] = true;
                        free.push(k);
                    }
                }
            }
            max_local = max_local.max(next);
        }
        let num_slots = (d + max_local) as usize;

        Resolver {
            idom,
            def_block,
            surely,
            slot_of,
            slot_ids,
            num_slots,
            use_count,
            arg_base: num_slots as u32,
            const_base: (num_slots + f.params.len()) as u32,
            consts: Vec::new(),
            const_ix: std::collections::HashMap::new(),
            checked: Vec::new(),
            checked_seen: vec![false; num_slots],
        }
    }

    /// Non-strict dominance over reachable blocks.
    fn dominates(&self, a: u32, mut b: u32) -> bool {
        loop {
            if a == b {
                return true;
            }
            let up = self.idom[b as usize];
            if up == b || up == u32::MAX {
                return false;
            }
            b = up;
        }
    }

    /// Interns a constant and returns its slot.
    fn const_slot(&mut self, v: Value) -> Src {
        let key = match v {
            Value::I(x) => (false, x as u64),
            Value::F(x) => (true, x.to_bits()),
        };
        let next = self.const_base + self.consts.len() as u32;
        let ix = *self.const_ix.entry(key).or_insert(next);
        if ix == next {
            self.consts.push(v);
        }
        Src(ix)
    }

    /// Emits a checked register read, recording the slot for frame-entry
    /// definedness reset. Checked targets always hold dedicated slots (the
    /// use analysis pins them), so their `defined` flag is never shared.
    fn checked(&mut self, r: u32) -> Src {
        debug_assert!(
            (r as usize) < self.slot_ids.len(),
            "checked read of shared slot"
        );
        if !self.checked_seen[r as usize] {
            self.checked_seen[r as usize] = true;
            self.checked.push(r);
        }
        Src(r | SRC_CHECKED)
    }

    /// Resolves an operand read from the body or terminator of block `at`;
    /// `local` marks registers assigned earlier within `at`.
    fn src(&mut self, op: Operand, at: u32, local: &[bool]) -> Src {
        match op {
            Operand::Const(imm) => self.const_slot(Value::from_imm(imm)),
            Operand::Arg(i) => {
                if self.arg_base + i < self.const_base {
                    Src(self.arg_base + i)
                } else {
                    Src(SRC_CHECKED | (SRC_OOB_ARG_BASE + i))
                }
            }
            Operand::Inst(id) => {
                let r = id.0 as usize;
                let proven = local[r]
                    || (self.surely[r] && {
                        let db = self.def_block[r];
                        db != u32::MAX && db != at && self.dominates(db, at)
                    });
                let slot = self.slot_of[r];
                debug_assert_ne!(slot, u32::MAX, "read of slot-less value");
                if proven {
                    Src(slot)
                } else {
                    self.checked(slot)
                }
            }
        }
    }

    /// Resolves a phi-incoming read, which executes on the edge from
    /// `pred` (after `pred`'s whole body, before the destination block).
    fn src_at_edge(&mut self, op: Operand, pred: u32) -> Src {
        match op {
            Operand::Const(imm) => self.const_slot(Value::from_imm(imm)),
            Operand::Arg(i) => {
                if self.arg_base + i < self.const_base {
                    Src(self.arg_base + i)
                } else {
                    Src(SRC_CHECKED | (SRC_OOB_ARG_BASE + i))
                }
            }
            Operand::Inst(id) => {
                let r = id.0 as usize;
                let db = self.def_block[r];
                let slot = self.slot_of[r];
                debug_assert_ne!(slot, u32::MAX, "read of slot-less value");
                if self.surely[r] && db != u32::MAX && self.dominates(db, pred) {
                    Src(slot)
                } else {
                    self.checked(slot)
                }
            }
        }
    }
}

fn decode_edge(
    f: &Function,
    res: &mut Resolver,
    bid: BlockId,
    lead: usize,
    from: BlockId,
    phi_cost: u64,
) -> Edge {
    let b = f.block(bid);
    let mut moves = Vec::with_capacity(lead);
    for &iid in &b.insts[..lead] {
        let InstKind::Phi(incoming) = &f.inst(iid).kind else {
            unreachable!("lead span contains only phis");
        };
        match incoming.iter().find(|(bb, _)| *bb == from) {
            Some((_, op)) => moves.push(PhiMove {
                dst: res.slot_of[iid.0 as usize],
                norm: Norm::of(f.inst(iid).ty),
                src: res.src_at_edge(*op, from.0),
            }),
            None => {
                let msg = format!(
                    "{}: phi in {} has no incoming edge from {}",
                    f.name,
                    b.name,
                    f.block(from).name
                );
                return Edge {
                    cycles: moves.len() as u64 * phi_cost,
                    moves: moves.into_boxed_slice(),
                    missing: Some(msg.into()),
                };
            }
        }
    }
    Edge {
        cycles: moves.len() as u64 * phi_cost,
        moves: moves.into_boxed_slice(),
        missing: None,
    }
}

/// Int ALU kinds that participate in pair fusion.
#[derive(Clone, Copy)]
enum AluK {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    AShr,
}

/// (kind, sh, mask, a, b) if `op` is a fusible int ALU instruction.
fn alu_parts(op: &FastOp) -> Option<(AluK, u32, u32, Src, Src)> {
    Some(match *op {
        FastOp::AddI { sh, a, b } => (AluK::Add, sh, 0, a, b),
        FastOp::SubI { sh, a, b } => (AluK::Sub, sh, 0, a, b),
        FastOp::MulI { sh, a, b } => (AluK::Mul, sh, 0, a, b),
        FastOp::AndI { sh, a, b } => (AluK::And, sh, 0, a, b),
        FastOp::OrI { sh, a, b } => (AluK::Or, sh, 0, a, b),
        FastOp::XorI { sh, a, b } => (AluK::Xor, sh, 0, a, b),
        FastOp::ShlI { sh, mask, a, b } => (AluK::Shl, sh, mask, a, b),
        FastOp::AShrI { sh, mask, a, b } => (AluK::AShr, sh, mask, a, b),
        _ => return None,
    })
}

/// Which operand is the fused temporary: `(other, 1)` if `x`, `(other, 2)`
/// if `y`, `None` if both or neither (both would be two uses, never
/// fusible).
fn other_operand(x: Src, y: Src, t: Src) -> Option<(Src, u8)> {
    match (x == t, y == t) {
        (true, false) => Some((y, 1)),
        (false, true) => Some((x, 2)),
        _ => None,
    }
}

/// Builds the int-pair superinstruction for a (producer, consumer,
/// temp-position) triple. Commutative consumers are normalized to
/// position 0 by the caller.
#[allow(clippy::too_many_arguments)]
fn int_fused(
    k1: AluK,
    k2: AluK,
    pos: u8,
    sh1: u32,
    mask1: u32,
    sh2: u32,
    mask2: u32,
    a: Src,
    b: Src,
    c: Src,
) -> FastOp {
    let _ = (mask1, mask2);
    match (k1, k2, pos) {
        (AluK::Add, AluK::Add, 0) => FastOp::FAddAdd { sh1, sh2, a, b, c },
        (AluK::Add, AluK::Mul, 0) => FastOp::FAddMul { sh1, sh2, a, b, c },
        (AluK::Add, AluK::And, 0) => FastOp::FAddAnd { sh1, sh2, a, b, c },
        (AluK::Add, AluK::Or, 0) => FastOp::FAddOr { sh1, sh2, a, b, c },
        (AluK::Add, AluK::Xor, 0) => FastOp::FAddXor { sh1, sh2, a, b, c },
        (AluK::Add, AluK::Sub, 1) => FastOp::FAddSub1 { sh1, sh2, a, b, c },
        (AluK::Add, AluK::Sub, 2) => FastOp::FAddSub2 { sh1, sh2, a, b, c },
        (AluK::Add, AluK::AShr, 1) => FastOp::FAddAShr1 {
            sh1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::Sub, AluK::Add, 0) => FastOp::FSubAdd { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::Mul, 0) => FastOp::FSubMul { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::And, 0) => FastOp::FSubAnd { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::Or, 0) => FastOp::FSubOr { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::Xor, 0) => FastOp::FSubXor { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::Sub, 1) => FastOp::FSubSub1 { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::Sub, 2) => FastOp::FSubSub2 { sh1, sh2, a, b, c },
        (AluK::Sub, AluK::AShr, 1) => FastOp::FSubAShr1 {
            sh1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::Mul, AluK::Add, 0) => FastOp::FMulAdd { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::Mul, 0) => FastOp::FMulMul { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::And, 0) => FastOp::FMulAnd { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::Or, 0) => FastOp::FMulOr { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::Xor, 0) => FastOp::FMulXor { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::Sub, 1) => FastOp::FMulSub1 { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::Sub, 2) => FastOp::FMulSub2 { sh1, sh2, a, b, c },
        (AluK::Mul, AluK::AShr, 1) => FastOp::FMulAShr1 {
            sh1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::And, AluK::Add, 0) => FastOp::FAndAdd { sh1, sh2, a, b, c },
        (AluK::And, AluK::Mul, 0) => FastOp::FAndMul { sh1, sh2, a, b, c },
        (AluK::And, AluK::And, 0) => FastOp::FAndAnd { sh1, sh2, a, b, c },
        (AluK::And, AluK::Or, 0) => FastOp::FAndOr { sh1, sh2, a, b, c },
        (AluK::And, AluK::Xor, 0) => FastOp::FAndXor { sh1, sh2, a, b, c },
        (AluK::And, AluK::Sub, 1) => FastOp::FAndSub1 { sh1, sh2, a, b, c },
        (AluK::And, AluK::Sub, 2) => FastOp::FAndSub2 { sh1, sh2, a, b, c },
        (AluK::And, AluK::AShr, 1) => FastOp::FAndAShr1 {
            sh1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::Or, AluK::Add, 0) => FastOp::FOrAdd { sh1, sh2, a, b, c },
        (AluK::Or, AluK::Mul, 0) => FastOp::FOrMul { sh1, sh2, a, b, c },
        (AluK::Or, AluK::And, 0) => FastOp::FOrAnd { sh1, sh2, a, b, c },
        (AluK::Or, AluK::Or, 0) => FastOp::FOrOr { sh1, sh2, a, b, c },
        (AluK::Or, AluK::Xor, 0) => FastOp::FOrXor { sh1, sh2, a, b, c },
        (AluK::Or, AluK::Sub, 1) => FastOp::FOrSub1 { sh1, sh2, a, b, c },
        (AluK::Or, AluK::Sub, 2) => FastOp::FOrSub2 { sh1, sh2, a, b, c },
        (AluK::Or, AluK::AShr, 1) => FastOp::FOrAShr1 {
            sh1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::Xor, AluK::Add, 0) => FastOp::FXorAdd { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::Mul, 0) => FastOp::FXorMul { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::And, 0) => FastOp::FXorAnd { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::Or, 0) => FastOp::FXorOr { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::Xor, 0) => FastOp::FXorXor { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::Sub, 1) => FastOp::FXorSub1 { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::Sub, 2) => FastOp::FXorSub2 { sh1, sh2, a, b, c },
        (AluK::Xor, AluK::AShr, 1) => FastOp::FXorAShr1 {
            sh1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::Add, 0) => FastOp::FShlAdd {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::Mul, 0) => FastOp::FShlMul {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::And, 0) => FastOp::FShlAnd {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::Or, 0) => FastOp::FShlOr {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::Xor, 0) => FastOp::FShlXor {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::Sub, 1) => FastOp::FShlSub1 {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::Sub, 2) => FastOp::FShlSub2 {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::Shl, AluK::AShr, 1) => FastOp::FShlAShr1 {
            sh1,
            mask1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::Add, 0) => FastOp::FAShrAdd {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::Mul, 0) => FastOp::FAShrMul {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::And, 0) => FastOp::FAShrAnd {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::Or, 0) => FastOp::FAShrOr {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::Xor, 0) => FastOp::FAShrXor {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::Sub, 1) => FastOp::FAShrSub1 {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::Sub, 2) => FastOp::FAShrSub2 {
            sh1,
            mask1,
            sh2,
            a,
            b,
            c,
        },
        (AluK::AShr, AluK::AShr, 1) => FastOp::FAShrAShr1 {
            sh1,
            mask1,
            sh2,
            mask2,
            a,
            b,
            c,
        },
        _ => unreachable!("combination filtered before construction"),
    }
}

/// Fuses `cur` into `prev` when `cur` is the sole consumer of `prev`'s
/// result (the caller has already verified `use_count == 1`, which also
/// guarantees the consuming operand is an unchecked same-block read).
/// Returns the superinstruction replacing both, or `None` if the pair is
/// not in the fusion table.
fn try_fuse(prev: &FastInst, cur: &FastInst) -> Option<FastOp> {
    if prev.dst == NO_DST {
        return None;
    }
    let t = Src(prev.dst);
    // Int ALU pairs.
    if let Some((k1, sh1, mask1, a, b)) = alu_parts(&prev.op) {
        if let Some((k2, sh2, mask2, x, y)) = alu_parts(&cur.op) {
            let (c, pos) = other_operand(x, y, t)?;
            let pos = match k2 {
                AluK::Add | AluK::Mul | AluK::And | AluK::Or | AluK::Xor => 0,
                AluK::Sub => pos,
                AluK::AShr if pos == 1 => 1,
                _ => return None,
            };
            return Some(int_fused(k1, k2, pos, sh1, mask1, sh2, mask2, a, b, c));
        }
    }
    // Address computation into the memory access using it.
    if let FastOp::Gep {
        base,
        index,
        elem_bytes,
    } = prev.op
    {
        macro_rules! gl {
            ($V:ident, $sh:expr) => {
                return Some(FastOp::$V {
                    sh2: $sh,
                    base,
                    index,
                    elem_bytes,
                })
            };
            ($V:ident) => {
                return Some(FastOp::$V {
                    base,
                    index,
                    elem_bytes,
                })
            };
        }
        macro_rules! gs {
            ($V:ident, $sh:expr, $vt:expr, $v:expr) => {
                return Some(FastOp::$V {
                    sh2: $sh,
                    val_ty: $vt,
                    v: $v,
                    base,
                    index,
                    elem_bytes,
                })
            };
            ($V:ident, $vt:expr, $v:expr) => {
                return Some(FastOp::$V {
                    val_ty: $vt,
                    v: $v,
                    base,
                    index,
                    elem_bytes,
                })
            };
        }
        match cur.op {
            FastOp::LoadI1 { sh, p } if p == t => gl!(FGepLoadI1, sh),
            FastOp::LoadI2 { sh, p } if p == t => gl!(FGepLoadI2, sh),
            FastOp::LoadI4 { sh, p } if p == t => gl!(FGepLoadI4, sh),
            FastOp::LoadI8 { p } if p == t => gl!(FGepLoadI8),
            FastOp::LoadF4 { p } if p == t => gl!(FGepLoadF4),
            FastOp::LoadF8 { p } if p == t => gl!(FGepLoadF8),
            FastOp::StoreI1 { sh, val_ty, v, p } if p == t => gs!(FGepStoreI1, sh, val_ty, v),
            FastOp::StoreI2 { sh, val_ty, v, p } if p == t => gs!(FGepStoreI2, sh, val_ty, v),
            FastOp::StoreI4 { sh, val_ty, v, p } if p == t => gs!(FGepStoreI4, sh, val_ty, v),
            FastOp::StoreI8 { val_ty, v, p } if p == t => gs!(FGepStoreI8, val_ty, v),
            FastOp::StoreF4 { val_ty, v, p } if p == t => gs!(FGepStoreF4, val_ty, v),
            FastOp::StoreF8 { val_ty, v, p } if p == t => gs!(FGepStoreF8, val_ty, v),
            _ => {}
        }
    }
    // Compare into the select it steers.
    if let FastOp::Select {
        norm,
        c,
        a: x,
        b: y,
    } = cur.op
    {
        if c == t {
            match prev.op {
                FastOp::CmpSI {
                    enc,
                    sh,
                    op,
                    src_ty,
                    a,
                    b,
                } => {
                    return Some(FastOp::FCmpSISelect {
                        enc,
                        sh1: sh,
                        cop: op,
                        src_ty,
                        n2: norm,
                        a,
                        b,
                        x,
                        y,
                    });
                }
                FastOp::CmpUI {
                    enc,
                    s_sh,
                    u_sh,
                    op,
                    src_ty,
                    a,
                    b,
                } => {
                    return Some(FastOp::FCmpUISelect {
                        enc,
                        s_sh,
                        u_sh,
                        cop: op,
                        src_ty,
                        n2: norm,
                        a,
                        b,
                        x,
                        y,
                    });
                }
                _ => {}
            }
        }
    }
    // Float pairs: operand order is preserved exactly (float add/mul are
    // only commutative up to NaN payload propagation).
    let fprod = match prev.op {
        FastOp::FAdd { norm, a, b } => Some((0u8, norm, a, b)),
        FastOp::FMul { norm, a, b } => Some((1u8, norm, a, b)),
        _ => None,
    };
    if let Some((k1, n1, a, b)) = fprod {
        if let FastOp::StoreF8 { val_ty: _, v, p } = cur.op {
            if k1 == 0 && v == t && p != t {
                return Some(FastOp::FFAddStoreF8 { n1, a, b, p });
            }
        }
        let fcons = match cur.op {
            FastOp::FAdd { norm, a: x, b: y } => Some((0u8, norm, x, y)),
            FastOp::FMul { norm, a: x, b: y } => Some((1u8, norm, x, y)),
            _ => None,
        };
        if let Some((k2, n2, x, y)) = fcons {
            let (c, pos) = other_operand(x, y, t)?;
            return Some(match (k1, k2, pos) {
                (0, 0, 1) => FastOp::FFAddFAdd1 { n1, n2, a, b, c },
                (0, 0, 2) => FastOp::FFAddFAdd2 { n1, n2, a, b, c },
                (0, 1, 1) => FastOp::FFAddFMul1 { n1, n2, a, b, c },
                (0, 1, 2) => FastOp::FFAddFMul2 { n1, n2, a, b, c },
                (1, 0, 1) => FastOp::FFMulFAdd1 { n1, n2, a, b, c },
                (1, 0, 2) => FastOp::FFMulFAdd2 { n1, n2, a, b, c },
                (1, 1, 1) => FastOp::FFMulFMul1 { n1, n2, a, b, c },
                (1, 1, 2) => FastOp::FFMulFMul2 { n1, n2, a, b, c },
                _ => unreachable!(),
            });
        }
    }
    None
}

fn decode_inst(f: &Function, iid: InstId, res: &mut Resolver, at: u32, local: &[bool]) -> FastInst {
    use jitise_ir::verify::operand_ty;
    let inst = f.inst(iid);
    let mut s = |op: Operand| res.src(op, at, local);
    let (dst, op) = match &inst.kind {
        InstKind::Bin(op, a, b) => {
            if op.is_float() {
                let norm = Norm::of(inst.ty);
                let (a, b) = (s(*a), s(*b));
                let fast = match op {
                    BinOp::FAdd => FastOp::FAdd { norm, a, b },
                    BinOp::FSub => FastOp::FSub { norm, a, b },
                    BinOp::FMul => FastOp::FMul { norm, a, b },
                    BinOp::FDiv => FastOp::FDiv { norm, a, b },
                    _ => FastOp::BinF {
                        op: *op,
                        norm,
                        a,
                        b,
                    },
                };
                (iid.0, fast)
            } else {
                let sh = wrap_shift(inst.ty);
                let mask = inst.ty.bits().max(1) - 1;
                let (a, b) = (s(*a), s(*b));
                let fast = match op {
                    BinOp::Add => FastOp::AddI { sh, a, b },
                    BinOp::Sub => FastOp::SubI { sh, a, b },
                    BinOp::Mul => FastOp::MulI { sh, a, b },
                    BinOp::And => FastOp::AndI { sh, a, b },
                    BinOp::Or => FastOp::OrI { sh, a, b },
                    BinOp::Xor => FastOp::XorI { sh, a, b },
                    BinOp::Shl => FastOp::ShlI { sh, mask, a, b },
                    BinOp::LShr => FastOp::LShrI { sh, mask, a, b },
                    BinOp::AShr => FastOp::AShrI { sh, mask, a, b },
                    _ => FastOp::BinI {
                        op: *op,
                        ty: inst.ty,
                        a,
                        b,
                    },
                };
                (iid.0, fast)
            }
        }
        InstKind::Un(op, a) => (
            iid.0,
            FastOp::Un {
                op: *op,
                ty: inst.ty,
                src_ty: operand_ty(f, *a),
                a: s(*a),
            },
        ),
        InstKind::Cmp(op, a, b) => {
            let src_ty = operand_ty(f, *a);
            // `value_to_imm` maps an integer value under a non-int type to
            // an I64 immediate, so the signed view is width-64 there while
            // the unsigned view still truncates at `src_ty`'s width.
            let s_sh = if src_ty.is_int() {
                wrap_shift(src_ty)
            } else {
                0
            };
            let u_sh = wrap_shift(src_ty);
            let (a, b) = (s(*a), s(*b));
            // Result bit per ordering: bit 0 = Less, 1 = Equal, 2 = Greater.
            let signed = |enc: u32| FastOp::CmpSI {
                enc,
                sh: s_sh,
                op: *op,
                src_ty,
                a,
                b,
            };
            let unsigned = |enc: u32| FastOp::CmpUI {
                enc,
                s_sh,
                u_sh,
                op: *op,
                src_ty,
                a,
                b,
            };
            let fast = match op {
                CmpOp::Eq => signed(0b010),
                CmpOp::Ne => signed(0b101),
                CmpOp::Slt => signed(0b001),
                CmpOp::Sle => signed(0b011),
                CmpOp::Sgt => signed(0b100),
                CmpOp::Sge => signed(0b110),
                CmpOp::Ult => unsigned(0b001),
                CmpOp::Ule => unsigned(0b011),
                CmpOp::Ugt => unsigned(0b100),
                CmpOp::Uge => unsigned(0b110),
                _ => FastOp::Cmp {
                    op: *op,
                    src_ty,
                    a,
                    b,
                },
            };
            (iid.0, fast)
        }
        InstKind::Select(c, a, b) => (
            iid.0,
            FastOp::Select {
                norm: Norm::of(inst.ty),
                c: s(*c),
                a: s(*a),
                b: s(*b),
            },
        ),
        InstKind::Load(p) => {
            let sh = wrap_shift(inst.ty);
            let p = s(*p);
            let fast = match inst.ty {
                Type::I1 | Type::I8 => FastOp::LoadI1 { sh, p },
                Type::I16 => FastOp::LoadI2 { sh, p },
                Type::I32 | Type::Ptr => FastOp::LoadI4 { sh, p },
                Type::I64 => FastOp::LoadI8 { p },
                Type::F32 => FastOp::LoadF4 { p },
                Type::F64 => FastOp::LoadF8 { p },
                Type::Void => FastOp::Load { ty: inst.ty, p },
            };
            (iid.0, fast)
        }
        InstKind::Store(v, p) => {
            let val_ty = operand_ty(f, *v);
            let sh = wrap_shift(val_ty);
            let (v, p) = (s(*v), s(*p));
            let fast = match val_ty {
                Type::I1 | Type::I8 => FastOp::StoreI1 { sh, val_ty, v, p },
                Type::I16 => FastOp::StoreI2 { sh, val_ty, v, p },
                Type::I32 | Type::Ptr => FastOp::StoreI4 { sh, val_ty, v, p },
                Type::I64 => FastOp::StoreI8 { val_ty, v, p },
                Type::F32 => FastOp::StoreF4 { val_ty, v, p },
                Type::F64 => FastOp::StoreF8 { val_ty, v, p },
                Type::Void => FastOp::Store { val_ty, v, p },
            };
            (NO_DST, fast)
        }
        InstKind::Gep {
            base,
            index,
            elem_bytes,
        } => (
            iid.0,
            FastOp::Gep {
                base: s(*base),
                index: s(*index),
                elem_bytes: *elem_bytes as i64,
            },
        ),
        InstKind::Alloca(bytes) => (iid.0, FastOp::Alloca { bytes: *bytes }),
        InstKind::GlobalAddr(g) => (iid.0, FastOp::GlobalAddr { idx: g.idx() }),
        InstKind::Call(callee, args) => (
            iid.0,
            FastOp::Call {
                callee: callee.0,
                args: args.iter().map(|a| s(*a)).collect(),
            },
        ),
        InstKind::CallExt(ef, args) => (
            iid.0,
            FastOp::CallExt {
                f: *ef,
                args: args.iter().map(|a| s(*a)).collect(),
            },
        ),
        InstKind::Custom(slot, args) => (
            iid.0,
            FastOp::Custom {
                slot: *slot,
                args: args.iter().map(|a| s(*a)).collect(),
            },
        ),
        InstKind::Phi(_) => (NO_DST, FastOp::PhiTrap),
    };
    let dst = if dst == NO_DST {
        NO_DST
    } else {
        res.slot_of[dst as usize]
    };
    FastInst { dst, op }
}

fn decode_func(f: &Function, fid: FuncId, cost: &CostModel) -> FastFunc {
    let phi_cost = cost.inst_cycles(&InstKind::Phi(vec![]));
    // Leading-phi span of every block (phis below the span trap at run
    // time, exactly like the interpreter).
    let leads: Vec<usize> = f
        .blocks
        .iter()
        .map(|b| {
            b.insts
                .iter()
                .take_while(|&&iid| matches!(f.inst(iid).kind, InstKind::Phi(_)))
                .count()
        })
        .collect();
    let mut res = Resolver::build(f, &leads);
    // Per-block parallel-copy edges, one per deduplicated CFG predecessor.
    let preds = f.predecessors();
    let mut edge_from: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); f.blocks.len()];
    for bid in f.block_ids() {
        if leads[bid.idx()] == 0 {
            continue;
        }
        for &p in &preds[bid.idx()] {
            if edge_from[bid.idx()].contains(&p) {
                continue;
            }
            edge_from[bid.idx()].push(p);
            edges[bid.idx()].push(decode_edge(f, &mut res, bid, leads[bid.idx()], p, phi_cost));
        }
    }
    let target = |from: BlockId, to: BlockId| -> Target {
        let edge = edge_from[to.idx()]
            .iter()
            .position(|&p| p == from)
            .map(|i| i as u32)
            .unwrap_or(NO_EDGE);
        Target { block: to.0, edge }
    };

    let mut blocks = Vec::with_capacity(f.blocks.len());
    let mut local = vec![false; f.insts.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        // Registers assigned earlier within this block: lead phis are
        // assigned by the edge parallel copy on entry (except in the entry
        // block, whose initial entry traverses no edge), then each decoded
        // body instruction that surely defines its result.
        local.iter_mut().for_each(|d| *d = false);
        if bi != 0 {
            for &iid in &b.insts[..leads[bi]] {
                local[iid.0 as usize] = true;
            }
        }
        let mut static_cycles = 0u64;
        let mut body: Vec<FastInst> = Vec::with_capacity(b.insts.len() - leads[bi]);
        // Arena id behind `body.last()` when it is an unfused fusion
        // candidate (fused results do not chain into further fusions).
        let mut prev_arena: Option<InstId> = None;
        for &iid in &b.insts[leads[bi]..] {
            static_cycles += cost.inst_cycles(&f.inst(iid).kind);
            let fi = decode_inst(f, iid, &mut res, bi as u32, &local);
            let mut fused = false;
            if let Some(pid) = prev_arena {
                if res.use_count[pid.0 as usize] == 1 {
                    if let Some(op) = try_fuse(body.last().expect("candidate exists"), &fi) {
                        let dst = fi.dst;
                        body.pop();
                        body.push(FastInst { dst, op });
                        fused = true;
                    }
                }
            }
            if !fused {
                body.push(fi);
            }
            prev_arena = if fused { None } else { Some(iid) };
            if res.surely[iid.0 as usize] {
                local[iid.0 as usize] = true;
            }
        }
        let term = match &b.term {
            Some(Terminator::Br(t)) => {
                static_cycles += cost.branch_cycles();
                FastTerm::Br(target(bid, *t))
            }
            Some(Terminator::CondBr(c, t, e)) => {
                static_cycles += cost.branch_cycles();
                FastTerm::CondBr {
                    c: res.src(*c, bi as u32, &local),
                    t: target(bid, *t),
                    f: target(bid, *e),
                }
            }
            Some(Terminator::Switch(v, cases, default)) => {
                static_cycles += cost.branch_cycles() + cases.len() as u64 / 2;
                let mut sorted: Vec<(i64, Target)> = Vec::with_capacity(cases.len());
                for (k, t) in cases {
                    // First occurrence of a key wins, like the linear scan.
                    if !sorted.iter().any(|(sk, _)| sk == k) {
                        sorted.push((*k, target(bid, *t)));
                    }
                }
                sorted.sort_unstable_by_key(|(k, _)| *k);
                FastTerm::Switch {
                    v: res.src(*v, bi as u32, &local),
                    cases: sorted.into_boxed_slice(),
                    default: target(bid, *default),
                }
            }
            Some(Terminator::Ret(v)) => FastTerm::Ret(v.map(|v| res.src(v, bi as u32, &local))),
            None => FastTerm::NoTerm,
        };
        blocks.push(FastBlock {
            body_insts: (b.insts.len() - leads[bi]) as u32,
            body: body.into_boxed_slice(),
            static_cycles,
            term,
            edges: std::mem::take(&mut edges[bi]).into_boxed_slice(),
        });
    }
    FastFunc {
        fid,
        name: f.name.clone(),
        params_len: f.params.len(),
        num_regs: res.num_slots,
        insts_len: f.insts.len(),
        slot_ids: res.slot_ids.into_boxed_slice(),
        consts: res.consts.into_boxed_slice(),
        checked_regs: res.checked.into_boxed_slice(),
        blocks,
    }
}

/// Per-frame dense profile row (merged into the VM's `Profile` on frame
/// exit — both the Ok and the Err path, since the interpreter records each
/// completed block incrementally).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BlockStat {
    pub(crate) count: u64,
    pub(crate) cycles: u64,
    pub(crate) insts: u64,
}

/// Reads one slot. The unchecked path skips the bounds check: decode only
/// emits slot indices below the frame total (compacted result slots, then
/// `params_len` argument slots guarded by the entry arity check, then the
/// interned constant pool), so the index is always in range.
#[inline(always)]
fn read(regs: &[Value], defined: &[bool], f: &FastFunc, src: Src) -> Result<Value> {
    let i = src.0;
    if i & SRC_CHECKED == 0 {
        debug_assert!((i as usize) < regs.len());
        Ok(unsafe { *regs.get_unchecked(i as usize) })
    } else {
        let r = (i & !SRC_CHECKED) as usize;
        if r >= SRC_OOB_ARG_BASE as usize {
            // Malformed IR read `Arg(i)` past the parameter list; the
            // interpreter indexes `args[i]` and dies with the std panic.
            panic!(
                "index out of bounds: the len is {} but the index is {}",
                f.params_len,
                r - SRC_OOB_ARG_BASE as usize
            );
        }
        if defined[r] {
            Ok(regs[r])
        } else {
            Err(Error::Vm(format!(
                "{}: read of undefined value %{} (unreachable-path artifact)",
                f.name, f.slot_ids[r]
            )))
        }
    }
}

/// Writes one result slot and marks it defined. Unchecked for the same
/// reason as [`read`]: every decoded `dst` is a compacted result slot below
/// `num_regs`, and both frame buffers are grown to at least that at entry.
#[inline(always)]
fn write(regs: &mut [Value], defined: &mut [bool], dst: u32, v: Value) {
    debug_assert!((dst as usize) < regs.len() && (dst as usize) < defined.len());
    unsafe {
        *regs.get_unchecked_mut(dst as usize) = v;
        *defined.get_unchecked_mut(dst as usize) = true;
    }
}

#[inline(always)]
fn fuel_err(max_steps: u64, fname: &str) -> Error {
    Error::Vm(format!("step budget {max_steps} exhausted in {fname}"))
}

/// Pooled per-call execution state (register file, definedness map, dense
/// profile rows, gather buffers). Recycled through
/// [`Interpreter::fast_frames`] so steady-state calls allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    /// Unified slot array `[inst results | args | consts]`. Result slots
    /// are NOT cleared between calls: an unchecked [`Src`] is only emitted
    /// when its def provably executes first within the frame, and checked
    /// reads gate on `defined`, so stale values are unreachable.
    regs: Vec<Value>,
    defined: Vec<bool>,
    /// Dense per-block stat rows. Invariant: all rows are zero between
    /// frames (the exit merge resets exactly the `touched` rows), so entry
    /// costs O(touched) instead of O(blocks) — calls into large functions
    /// that execute a few blocks dominate call-heavy apps otherwise.
    prof: Vec<BlockStat>,
    /// Indices of `prof` rows with nonzero counts, in first-touch order.
    touched: Vec<u32>,
    /// Phi parallel-copy gather buffer.
    scratch: Vec<Value>,
    /// Call-argument gather buffer.
    call_vals: Vec<Value>,
}

/// Executes `fid` on the fast tier. Entry point used by
/// [`Interpreter::run_func`]; recursion for calls stays on this tier.
pub(crate) fn exec_fast(
    vm: &mut Interpreter<'_>,
    pd: &PredecodedModule,
    fid: FuncId,
    args: &[Value],
    depth: u32,
) -> Result<Option<Value>> {
    if depth >= vm.cfg.max_call_depth {
        return Err(Error::Vm(format!(
            "call depth limit {} exceeded",
            vm.cfg.max_call_depth
        )));
    }
    let f = &pd.funcs[fid.idx()];
    if args.len() != f.params_len {
        return Err(Error::Vm(format!(
            "{}: expected {} args, got {}",
            f.name,
            f.params_len,
            args.len()
        )));
    }
    let stack_mark = vm.mem.stack_mark();
    let mut fr = vm.fast_frames.pop().unwrap_or_default();
    // Grow-only buffers: shrinking for a small callee then re-growing for
    // its caller would re-zero the difference on every call.
    let total = f.num_regs + args.len() + f.consts.len();
    if fr.regs.len() < total {
        fr.regs.resize(total, Value::I(0));
    }
    fr.regs[f.num_regs..f.num_regs + args.len()].copy_from_slice(args);
    fr.regs[f.num_regs + args.len()..total].copy_from_slice(&f.consts);
    if fr.defined.len() < f.num_regs {
        fr.defined.resize(f.num_regs, false);
    }
    // Only the slots a checked read can consult need fresh flags; every
    // other slot is written before any read (decode proved it) or never
    // read at all, so stale flags are unobservable.
    for &r in &f.checked_regs {
        fr.defined[r as usize] = false;
    }
    if fr.prof.len() < f.blocks.len() {
        fr.prof.resize(f.blocks.len(), BlockStat::default());
    }
    // The step counter lives in a dedicated local for the whole frame (a
    // noalias `&mut` the dispatch loop can keep in a register instead of
    // round-tripping through `vm.steps` per instruction); it is synced back
    // on every exit path and around call recursion, so `vm.steps` is
    // bit-identical to the interpreter's at every observable point.
    let mut steps = vm.steps;
    let ret = run_blocks(vm, pd, f, depth, &mut fr, &mut steps);
    vm.steps = steps;
    // Merge this frame's rows into the dense per-module accumulator: a
    // `Profile` hash insert per touched block per call dominates call-heavy
    // apps, so the hash map is only touched once per outermost run below.
    if vm.fast_prof.len() <= f.fid.idx() {
        vm.fast_prof.resize_with(f.fid.idx() + 1, Vec::new);
    }
    let rows = &mut vm.fast_prof[f.fid.idx()];
    if rows.len() < f.blocks.len() {
        rows.resize(f.blocks.len(), BlockStat::default());
    }
    for &bi in &fr.touched {
        let st = std::mem::take(&mut fr.prof[bi as usize]);
        let row = &mut rows[bi as usize];
        if row.count == 0 {
            vm.fast_prof_touched.push((f.fid.0, bi));
        }
        row.count += st.count;
        row.cycles += st.cycles;
        row.insts += st.insts;
    }
    fr.touched.clear();
    vm.fast_frames.push(fr);
    if depth == 0 {
        // Outermost frame done (success or trap): flush the dense rows so
        // `Interpreter::profile` is exact at every observation point.
        while let Some((fid, bi)) = vm.fast_prof_touched.pop() {
            let st = std::mem::take(&mut vm.fast_prof[fid as usize][bi as usize]);
            vm.profile.record_many(
                BlockKey::new(FuncId(fid), BlockId(bi)),
                st.count,
                st.cycles,
                st.insts,
            );
        }
    }
    let ret = ret?;
    // Like the interpreter: the stack frame is released only on success
    // (errors abort the whole run).
    vm.mem.stack_release(stack_mark);
    Ok(ret)
}

fn run_blocks(
    vm: &mut Interpreter<'_>,
    pd: &PredecodedModule,
    f: &FastFunc,
    depth: u32,
    fr: &mut Frame,
    steps: &mut u64,
) -> Result<Option<Value>> {
    let max_steps = vm.cfg.max_steps;
    let Frame {
        regs,
        defined,
        prof,
        touched,
        scratch,
        call_vals,
    } = fr;
    let mut cur = 0usize;
    let mut pending_edge = NO_EDGE;
    loop {
        let blk = &f.blocks[cur];
        let mut block_cycles = blk.static_cycles;
        let mut block_insts = blk.body_insts as u64;

        // ---- phi parallel copy for the traversed edge ----
        if pending_edge != NO_EDGE {
            let edge = &blk.edges[pending_edge as usize];
            scratch.clear();
            for mv in edge.moves.iter() {
                *steps += 1;
                if *steps > max_steps {
                    return Err(fuel_err(max_steps, &f.name));
                }
                let v = read(regs, defined, f, mv.src)?;
                scratch.push(mv.norm.apply(v));
            }
            if let Some(msg) = &edge.missing {
                // The phi at this position still counts as a dynamic
                // instruction before the missing-edge check fires.
                *steps += 1;
                if *steps > max_steps {
                    return Err(fuel_err(max_steps, &f.name));
                }
                return Err(Error::Vm(msg.to_string()));
            }
            for (mv, v) in edge.moves.iter().zip(scratch.drain(..)) {
                write(regs, defined, mv.dst, v);
            }
            block_insts += edge.moves.len() as u64;
            block_cycles += edge.cycles;
        }

        // ---- straight-line body ----
        for fi in blk.body.iter() {
            *steps += 1;
            if *steps > max_steps {
                return Err(fuel_err(max_steps, &f.name));
            }
            match &fi.op {
                FastOp::AddI { sh, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((va.wrapping_add(vb) << sh) >> sh),
                    );
                }
                FastOp::SubI { sh, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((va.wrapping_sub(vb) << sh) >> sh),
                    );
                }
                FastOp::MulI { sh, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((va.wrapping_mul(vb) << sh) >> sh),
                    );
                }
                FastOp::AndI { sh, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((va & vb) << sh) >> sh));
                }
                FastOp::OrI { sh, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((va | vb) << sh) >> sh));
                }
                FastOp::XorI { sh, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((va ^ vb) << sh) >> sh));
                }
                FastOp::ShlI { sh, mask, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let r = va.wrapping_shl(vb as u32 & mask);
                    write(regs, defined, fi.dst, Value::I((r << sh) >> sh));
                }
                FastOp::LShrI { sh, mask, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let ua = ((va as u64) << sh) >> sh;
                    let r = (ua >> (vb as u32 & mask)) as i64;
                    write(regs, defined, fi.dst, Value::I((r << sh) >> sh));
                }
                FastOp::AShrI { sh, mask, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let r = ((va << sh) >> sh) >> (vb as u32 & mask);
                    write(regs, defined, fi.dst, Value::I((r << sh) >> sh));
                }
                FastOp::BinI { op, ty, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let r = fold_int_bin(*op, *ty, va, vb)
                        .ok_or_else(|| Error::Vm(format!("{}: division by zero", f.name)))?;
                    write(regs, defined, fi.dst, Value::I(r));
                }
                FastOp::FAdd { norm, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    write(regs, defined, fi.dst, norm.apply(Value::F(va + vb)));
                }
                FastOp::FSub { norm, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    write(regs, defined, fi.dst, norm.apply(Value::F(va - vb)));
                }
                FastOp::FMul { norm, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    write(regs, defined, fi.dst, norm.apply(Value::F(va * vb)));
                }
                FastOp::FDiv { norm, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    write(regs, defined, fi.dst, norm.apply(Value::F(va / vb)));
                }
                FastOp::BinF { op, norm, a, b } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let r = fold_float_bin(*op, va, vb).expect("float binop");
                    write(regs, defined, fi.dst, norm.apply(Value::F(r)));
                }
                FastOp::Un { op, ty, src_ty, a } => {
                    let va = read(regs, defined, f, *a)?;
                    let imm = value_to_imm(va, *src_ty);
                    let out = fold_un(*op, *ty, &imm)
                        .ok_or_else(|| Error::Vm(format!("{}: invalid cast of {va:?}", f.name)))?;
                    write(regs, defined, fi.dst, Value::from_imm(out));
                }
                FastOp::CmpSI {
                    enc,
                    sh,
                    op,
                    src_ty,
                    a,
                    b,
                } => {
                    let va = read(regs, defined, f, *a)?;
                    let vb = read(regs, defined, f, *b)?;
                    let r = if let (Value::I(x), Value::I(y)) = (va, vb) {
                        let (sx, sy) = ((x << sh) >> sh, (y << sh) >> sh);
                        (enc >> (sx.cmp(&sy) as i8 + 1)) & 1 != 0
                    } else {
                        let (ia, ib) = (value_to_imm(va, *src_ty), value_to_imm(vb, *src_ty));
                        fold_cmp(*op, *src_ty, &ia, &ib)
                    };
                    write(regs, defined, fi.dst, Value::I(r as i64));
                }
                FastOp::CmpUI {
                    enc,
                    s_sh,
                    u_sh,
                    op,
                    src_ty,
                    a,
                    b,
                } => {
                    let va = read(regs, defined, f, *a)?;
                    let vb = read(regs, defined, f, *b)?;
                    let r = if let (Value::I(x), Value::I(y)) = (va, vb) {
                        let (sx, sy) = ((x << s_sh) >> s_sh, (y << s_sh) >> s_sh);
                        let ux = ((sx as u64) << u_sh) >> u_sh;
                        let uy = ((sy as u64) << u_sh) >> u_sh;
                        (enc >> (ux.cmp(&uy) as i8 + 1)) & 1 != 0
                    } else {
                        let (ia, ib) = (value_to_imm(va, *src_ty), value_to_imm(vb, *src_ty));
                        fold_cmp(*op, *src_ty, &ia, &ib)
                    };
                    write(regs, defined, fi.dst, Value::I(r as i64));
                }
                FastOp::Cmp { op, src_ty, a, b } => {
                    let va = read(regs, defined, f, *a)?;
                    let vb = read(regs, defined, f, *b)?;
                    let (ia, ib) = (value_to_imm(va, *src_ty), value_to_imm(vb, *src_ty));
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(fold_cmp(*op, *src_ty, &ia, &ib) as i64),
                    );
                }
                FastOp::Select { norm, c, a, b } => {
                    let vc = read(regs, defined, f, *c)?;
                    let chosen = if vc.as_bool() { a } else { b };
                    let v = norm.apply(read(regs, defined, f, *chosen)?);
                    write(regs, defined, fi.dst, v);
                }
                FastOp::LoadI1 { sh, p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    let raw = vm.mem.load_bytes::<1>(addr)?;
                    write(regs, defined, fi.dst, Value::I(((raw << sh) as i64) >> sh));
                }
                FastOp::LoadI2 { sh, p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    let raw = vm.mem.load_bytes::<2>(addr)?;
                    write(regs, defined, fi.dst, Value::I(((raw << sh) as i64) >> sh));
                }
                FastOp::LoadI4 { sh, p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    let raw = vm.mem.load_bytes::<4>(addr)?;
                    write(regs, defined, fi.dst, Value::I(((raw << sh) as i64) >> sh));
                }
                FastOp::LoadI8 { p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    let raw = vm.mem.load_bytes::<8>(addr)?;
                    write(regs, defined, fi.dst, Value::I(raw as i64));
                }
                FastOp::LoadF4 { p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    let raw = vm.mem.load_bytes::<4>(addr)?;
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::F(f32::from_bits(raw as u32) as f64),
                    );
                }
                FastOp::LoadF8 { p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    let raw = vm.mem.load_bytes::<8>(addr)?;
                    write(regs, defined, fi.dst, Value::F(f64::from_bits(raw)));
                }
                FastOp::Load { ty, p } => {
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    write(regs, defined, fi.dst, vm.mem.load(*ty, addr)?);
                }
                FastOp::StoreI1 { sh, val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    match val {
                        Value::I(x) => {
                            vm.mem.store_bytes::<1>(addr, ((x as u64) << sh) >> sh)?;
                        }
                        _ => vm.mem.store(*val_ty, addr, val)?,
                    }
                }
                FastOp::StoreI2 { sh, val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    match val {
                        Value::I(x) => {
                            vm.mem.store_bytes::<2>(addr, ((x as u64) << sh) >> sh)?;
                        }
                        _ => vm.mem.store(*val_ty, addr, val)?,
                    }
                }
                FastOp::StoreI4 { sh, val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    match val {
                        Value::I(x) => {
                            vm.mem.store_bytes::<4>(addr, ((x as u64) << sh) >> sh)?;
                        }
                        _ => vm.mem.store(*val_ty, addr, val)?,
                    }
                }
                FastOp::StoreI8 { val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    match val {
                        Value::I(x) => vm.mem.store_bytes::<8>(addr, x as u64)?,
                        _ => vm.mem.store(*val_ty, addr, val)?,
                    }
                }
                FastOp::StoreF4 { val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    match val {
                        Value::F(x) => {
                            vm.mem.store_bytes::<4>(addr, (x as f32).to_bits() as u64)?;
                        }
                        _ => vm.mem.store(*val_ty, addr, val)?,
                    }
                }
                FastOp::StoreF8 { val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    match val {
                        Value::F(x) => vm.mem.store_bytes::<8>(addr, x.to_bits())?,
                        _ => vm.mem.store(*val_ty, addr, val)?,
                    }
                }
                FastOp::Store { val_ty, v, p } => {
                    let val = read(regs, defined, f, *v)?;
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    vm.mem.store(*val_ty, addr, val)?;
                }
                FastOp::Gep {
                    base,
                    index,
                    elem_bytes,
                } => {
                    let b = read(regs, defined, f, *base)?.as_ptr();
                    let i = read(regs, defined, f, *index)?.as_i();
                    let addr = (b as i64).wrapping_add(i.wrapping_mul(*elem_bytes));
                    write(regs, defined, fi.dst, Value::I(addr as u32 as i64));
                }
                FastOp::Alloca { bytes } => {
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(vm.mem.alloca(*bytes)? as i64),
                    );
                }
                FastOp::GlobalAddr { idx } => {
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(vm.mem.global_addr(*idx) as i64),
                    );
                }
                FastOp::Call {
                    callee,
                    args: call_args,
                } => {
                    call_vals.clear();
                    for a in call_args.iter() {
                        let v = read(regs, defined, f, *a)?;
                        call_vals.push(v);
                    }
                    // The callee reads and advances the shared fuel budget
                    // through `vm.steps`: sync out, recurse, sync back.
                    vm.steps = *steps;
                    let callee_ret = exec_fast(vm, pd, FuncId(*callee), call_vals, depth + 1);
                    *steps = vm.steps;
                    if let Some(v) = callee_ret? {
                        write(regs, defined, fi.dst, v);
                    }
                }
                FastOp::CallExt {
                    f: ef,
                    args: call_args,
                } => {
                    call_vals.clear();
                    for a in call_args.iter() {
                        let v = read(regs, defined, f, *a)?;
                        call_vals.push(v);
                    }
                    write(regs, defined, fi.dst, Value::F(eval_ext(*ef, call_vals)?));
                }
                FastOp::Custom {
                    slot,
                    args: call_args,
                } => {
                    let handler = vm
                        .custom
                        .ok_or_else(|| Error::Vm("custom instruction without handler".into()))?;
                    call_vals.clear();
                    for a in call_args.iter() {
                        let v = read(regs, defined, f, *a)?;
                        call_vals.push(v);
                    }
                    let (v, hw_cycles) = handler.exec_custom(*slot, call_vals)?;
                    block_cycles += hw_cycles;
                    write(regs, defined, fi.dst, v);
                }
                FastOp::PhiTrap => {
                    return Err(Error::Vm(format!(
                        "{}: phi after non-phi instruction",
                        f.name
                    )));
                }
                FastOp::FAddAdd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAddMul { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAddAnd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FAddOr { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FAddXor { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FAddSub1 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAddSub2 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FAddAShr1 {
                    sh1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_add(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FSubAdd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FSubMul { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FSubAnd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FSubOr { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FSubXor { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FSubSub1 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FSubSub2 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FSubAShr1 {
                    sh1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_sub(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FMulAdd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FMulMul { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FMulAnd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FMulOr { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FMulXor { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FMulSub1 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FMulSub2 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FMulAShr1 {
                    sh1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_mul(vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FAndAdd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAndMul { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAndAnd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FAndOr { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FAndXor { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FAndSub1 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAndSub2 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FAndAShr1 {
                    sh1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va & vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FOrAdd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FOrMul { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FOrAnd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FOrOr { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FOrXor { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FOrSub1 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FOrSub2 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FOrAShr1 {
                    sh1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va | vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FXorAdd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FXorMul { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FXorAnd { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FXorOr { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FXorXor { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FXorSub1 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FXorSub2 { sh1, sh2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FXorAShr1 {
                    sh1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((va ^ vb) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FShlAdd {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FShlMul {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FShlAnd {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FShlOr {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FShlXor {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FShlSub1 {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FShlSub2 {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FShlAShr1 {
                    sh1,
                    mask1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = (va.wrapping_shl(vb as u32 & mask1) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FAShrAdd {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_add(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAShrMul {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_mul(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAShrAnd {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t & vc) << sh2) >> sh2));
                }
                FastOp::FAShrOr {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t | vc) << sh2) >> sh2));
                }
                FastOp::FAShrXor {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(regs, defined, fi.dst, Value::I(((t ^ vc) << sh2) >> sh2));
                }
                FastOp::FAShrSub1 {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((t.wrapping_sub(vc) << sh2) >> sh2),
                    );
                }
                FastOp::FAShrSub2 {
                    sh1,
                    mask1,
                    sh2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I((vc.wrapping_sub(t) << sh2) >> sh2),
                    );
                }
                FastOp::FAShrAShr1 {
                    sh1,
                    mask1,
                    sh2,
                    mask2,
                    a,
                    b,
                    c,
                } => {
                    let va = read(regs, defined, f, *a)?.as_i();
                    let vb = read(regs, defined, f, *b)?.as_i();
                    let t = ((((va << sh1) >> sh1) >> (vb as u32 & mask1)) << sh1) >> sh1;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_i();
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((((t << sh2) >> sh2) >> (vc as u32 & mask2)) << sh2) >> sh2),
                    );
                }
                FastOp::FFAddFAdd1 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va + vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(t + vc)));
                }
                FastOp::FFAddFAdd2 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va + vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(vc + t)));
                }
                FastOp::FFAddFMul1 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va + vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(t * vc)));
                }
                FastOp::FFAddFMul2 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va + vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(vc * t)));
                }
                FastOp::FFMulFAdd1 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va * vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(t + vc)));
                }
                FastOp::FFMulFAdd2 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va * vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(vc + t)));
                }
                FastOp::FFMulFMul1 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va * vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(t * vc)));
                }
                FastOp::FFMulFMul2 { n1, n2, a, b, c } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va * vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let vc = read(regs, defined, f, *c)?.as_f();
                    write(regs, defined, fi.dst, n2.apply(Value::F(vc * t)));
                }
                FastOp::FFAddStoreF8 { n1, a, b, p } => {
                    let va = read(regs, defined, f, *a)?.as_f();
                    let vb = read(regs, defined, f, *b)?.as_f();
                    let t = n1.apply_f(va + vb);
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let addr = read(regs, defined, f, *p)?.as_ptr();
                    vm.mem.store_bytes::<8>(addr, t.to_bits())?;
                }
                FastOp::FGepLoadI1 {
                    sh2,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let raw = vm.mem.load_bytes::<1>(taddr)?;
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((raw << sh2) as i64) >> sh2),
                    );
                }
                FastOp::FGepLoadI2 {
                    sh2,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let raw = vm.mem.load_bytes::<2>(taddr)?;
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((raw << sh2) as i64) >> sh2),
                    );
                }
                FastOp::FGepLoadI4 {
                    sh2,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let raw = vm.mem.load_bytes::<4>(taddr)?;
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::I(((raw << sh2) as i64) >> sh2),
                    );
                }
                FastOp::FGepLoadI8 {
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let raw = vm.mem.load_bytes::<8>(taddr)?;
                    write(regs, defined, fi.dst, Value::I(raw as i64));
                }
                FastOp::FGepLoadF4 {
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let raw = vm.mem.load_bytes::<4>(taddr)?;
                    write(
                        regs,
                        defined,
                        fi.dst,
                        Value::F(f32::from_bits(raw as u32) as f64),
                    );
                }
                FastOp::FGepLoadF8 {
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let raw = vm.mem.load_bytes::<8>(taddr)?;
                    write(regs, defined, fi.dst, Value::F(f64::from_bits(raw)));
                }
                FastOp::FGepStoreI1 {
                    sh2,
                    val_ty,
                    v,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let val = read(regs, defined, f, *v)?;
                    match val {
                        Value::I(x) => {
                            vm.mem.store_bytes::<1>(taddr, ((x as u64) << sh2) >> sh2)?;
                        }
                        _ => vm.mem.store(*val_ty, taddr, val)?,
                    }
                }
                FastOp::FGepStoreI2 {
                    sh2,
                    val_ty,
                    v,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let val = read(regs, defined, f, *v)?;
                    match val {
                        Value::I(x) => {
                            vm.mem.store_bytes::<2>(taddr, ((x as u64) << sh2) >> sh2)?;
                        }
                        _ => vm.mem.store(*val_ty, taddr, val)?,
                    }
                }
                FastOp::FGepStoreI4 {
                    sh2,
                    val_ty,
                    v,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let val = read(regs, defined, f, *v)?;
                    match val {
                        Value::I(x) => {
                            vm.mem.store_bytes::<4>(taddr, ((x as u64) << sh2) >> sh2)?;
                        }
                        _ => vm.mem.store(*val_ty, taddr, val)?,
                    }
                }
                FastOp::FGepStoreI8 {
                    val_ty,
                    v,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let val = read(regs, defined, f, *v)?;
                    match val {
                        Value::I(x) => vm.mem.store_bytes::<8>(taddr, x as u64)?,
                        _ => vm.mem.store(*val_ty, taddr, val)?,
                    }
                }
                FastOp::FGepStoreF4 {
                    val_ty,
                    v,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let val = read(regs, defined, f, *v)?;
                    match val {
                        Value::F(x) => {
                            vm.mem
                                .store_bytes::<4>(taddr, (x as f32).to_bits() as u64)?;
                        }
                        _ => vm.mem.store(*val_ty, taddr, val)?,
                    }
                }
                FastOp::FGepStoreF8 {
                    val_ty,
                    v,
                    base,
                    index,
                    elem_bytes,
                } => {
                    let bb = read(regs, defined, f, *base)?.as_ptr();
                    let ii = read(regs, defined, f, *index)?.as_i();
                    let taddr = (bb as i64).wrapping_add(ii.wrapping_mul(*elem_bytes)) as u32;
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let val = read(regs, defined, f, *v)?;
                    match val {
                        Value::F(x) => vm.mem.store_bytes::<8>(taddr, x.to_bits())?,
                        _ => vm.mem.store(*val_ty, taddr, val)?,
                    }
                }
                FastOp::FCmpSISelect {
                    enc,
                    sh1,
                    cop,
                    src_ty,
                    n2,
                    a,
                    b,
                    x,
                    y,
                } => {
                    let va = read(regs, defined, f, *a)?;
                    let vb = read(regs, defined, f, *b)?;
                    let r = if let (Value::I(vx), Value::I(vy)) = (va, vb) {
                        let (sx, sy) = ((vx << sh1) >> sh1, (vy << sh1) >> sh1);
                        (enc >> (sx.cmp(&sy) as i8 + 1)) & 1 != 0
                    } else {
                        let (ia, ib) = (value_to_imm(va, *src_ty), value_to_imm(vb, *src_ty));
                        fold_cmp(*cop, *src_ty, &ia, &ib)
                    };
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let chosen = if r { x } else { y };
                    let v = n2.apply(read(regs, defined, f, *chosen)?);
                    write(regs, defined, fi.dst, v);
                }
                FastOp::FCmpUISelect {
                    enc,
                    s_sh,
                    u_sh,
                    cop,
                    src_ty,
                    n2,
                    a,
                    b,
                    x,
                    y,
                } => {
                    let va = read(regs, defined, f, *a)?;
                    let vb = read(regs, defined, f, *b)?;
                    let r = if let (Value::I(vx), Value::I(vy)) = (va, vb) {
                        let (sx, sy) = ((vx << s_sh) >> s_sh, (vy << s_sh) >> s_sh);
                        let ux = ((sx as u64) << u_sh) >> u_sh;
                        let uy = ((sy as u64) << u_sh) >> u_sh;
                        (enc >> (ux.cmp(&uy) as i8 + 1)) & 1 != 0
                    } else {
                        let (ia, ib) = (value_to_imm(va, *src_ty), value_to_imm(vb, *src_ty));
                        fold_cmp(*cop, *src_ty, &ia, &ib)
                    };
                    *steps += 1;
                    if *steps > max_steps {
                        return Err(fuel_err(max_steps, &f.name));
                    }
                    let chosen = if r { x } else { y };
                    let v = n2.apply(read(regs, defined, f, *chosen)?);
                    write(regs, defined, fi.dst, v);
                }
            }
        }

        // ---- terminator ----
        let next = match &blk.term {
            FastTerm::Br(t) => *t,
            FastTerm::CondBr { c, t, f: e } => {
                let vc = read(regs, defined, f, *c)?;
                if vc.as_bool() {
                    *t
                } else {
                    *e
                }
            }
            FastTerm::Switch { v, cases, default } => {
                let val = read(regs, defined, f, *v)?.as_i();
                match cases.binary_search_by_key(&val, |(k, _)| *k) {
                    Ok(i) => cases[i].1,
                    Err(_) => *default,
                }
            }
            FastTerm::Ret(src) => {
                let out = match src {
                    Some(s) => Some(read(regs, defined, f, *s)?),
                    None => None,
                };
                vm.cycles += block_cycles;
                vm.blocks += 1;
                let st = &mut prof[cur];
                if st.count == 0 {
                    touched.push(cur as u32);
                }
                st.count += 1;
                st.cycles += block_cycles;
                st.insts += block_insts;
                return Ok(out);
            }
            FastTerm::NoTerm => {
                panic!("block has no terminator (unfinished construction?)")
            }
        };
        vm.cycles += block_cycles;
        vm.blocks += 1;
        let st = &mut prof[cur];
        if st.count == 0 {
            touched.push(cur as u32);
        }
        st.count += 1;
        st.cycles += block_cycles;
        st.insts += block_insts;
        pending_edge = next.edge;
        cur = next.block as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::RunConfig;
    use jitise_ir::{FunctionBuilder, Imm, Operand as Op};

    fn module_of(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_func(f);
        m
    }

    /// Runs `main` on both tiers with identical configs; asserts every
    /// observable (result or error string, steps, cycles, profile) is
    /// bit-identical, and returns the interpreter-tier outcome.
    fn assert_tiers_identical(
        m: &Module,
        args: &[Value],
        cfg: RunConfig,
    ) -> std::result::Result<crate::interp::ExecOutcome, String> {
        let mut slow = Interpreter::with_config(m, CostModel::ppc405(), cfg.clone());
        let slow_out = slow.run("main", args);
        let mut fast = Interpreter::with_config(m, CostModel::ppc405(), cfg);
        fast.set_tier(VmTier::Fast);
        let fast_out = fast.run("main", args);
        match (&slow_out, &fast_out) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "outcomes must match"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "errors must match"),
            _ => panic!("tier divergence: interp={slow_out:?} fast={fast_out:?}"),
        }
        assert_eq!(slow.profile(), fast.profile(), "profiles must match");
        slow_out.map_err(|e| e.to_string())
    }

    fn swap_loop() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let header = b.new_block("header");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let pre = b.current();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32);
        let a = b.phi(Type::I32);
        let bb = b.phi(Type::I32);
        b.add_incoming(i, pre, Op::ci32(0));
        b.add_incoming(a, pre, Op::ci32(1));
        b.add_incoming(bb, pre, Op::ci32(2));
        let c = b.cmp(jitise_ir::CmpOp::Slt, i, Op::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(i, Op::ci32(1));
        b.add_incoming(i, body, i2);
        b.add_incoming(a, body, bb);
        b.add_incoming(bb, body, a);
        b.br(header);
        b.switch_to(exit);
        let r = b.shl(a, Op::ci32(8));
        let r2 = b.or(r, bb);
        b.ret(r2);
        module_of(b.finish())
    }

    #[test]
    fn fast_tier_identical_on_phi_loop() {
        let m = swap_loop();
        for n in [0, 1, 2, 7, 100] {
            let out = assert_tiers_identical(&m, &[Value::I(n)], RunConfig::default()).unwrap();
            assert!(out.steps > 0);
        }
    }

    #[test]
    fn fast_tier_identical_on_fuel_trap() {
        let m = swap_loop();
        let cfg = RunConfig {
            max_steps: 37,
            ..Default::default()
        };
        let err = assert_tiers_identical(&m, &[Value::I(1_000_000)], cfg).unwrap_err();
        assert!(err.contains("step budget 37 exhausted in main"));
    }

    #[test]
    fn fast_tier_identical_on_div_by_zero() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let d = b.sdiv(Op::ci32(7), Op::Arg(0));
        b.ret(d);
        let m = module_of(b.finish());
        assert_tiers_identical(&m, &[Value::I(3)], RunConfig::default()).unwrap();
        let err = assert_tiers_identical(&m, &[Value::I(0)], RunConfig::default()).unwrap_err();
        assert!(err.contains("division by zero"));
    }

    #[test]
    fn fast_tier_identical_on_oob_and_memory() {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let cell = b.alloca(8);
        b.store(Op::ci32(11), cell);
        let p = b.gep(cell, Op::Arg(0), 4);
        let v = b.load(Type::I32, p);
        b.ret(v);
        let m = module_of(b.finish());
        assert_tiers_identical(&m, &[Value::I(0)], RunConfig::default()).unwrap();
        // A wild index must produce the same out-of-bounds error string.
        let err =
            assert_tiers_identical(&m, &[Value::I(1 << 20)], RunConfig::default()).unwrap_err();
        assert!(err.contains("access"), "unexpected error: {err}");
    }

    #[test]
    fn fast_tier_identical_on_select_switch_call() {
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", vec![Type::I32], Type::I32);
        let dbl = leaf.add(Op::Arg(0), Op::Arg(0));
        leaf.ret(dbl);
        let leaf_id = m.add_func(leaf.finish());
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::F32);
        let c1 = b.new_block("c1");
        let d = b.new_block("d");
        let j = b.new_block("join");
        let r = b.call(leaf_id, vec![Op::Arg(0)], Type::I32);
        // Duplicate case targets exercise edge deduplication.
        b.switch(r, vec![(2, c1), (4, c1)], d);
        b.switch_to(c1);
        b.br(j);
        b.switch_to(d);
        let s = Op::Inst(b.push(
            InstKind::Select(
                Op::Arg(0),
                Op::Const(Imm::f64(0.1)),
                Op::Const(Imm::f64(0.2)),
            ),
            Type::F32,
        ));
        b.br(j);
        b.switch_to(j);
        let out = b.phi(Type::F32);
        b.add_incoming(out, c1, Op::Const(Imm::f64(0.5)));
        b.add_incoming(out, d, s);
        b.ret(out);
        m.add_func(b.finish());
        for n in [0, 1, 2, 3] {
            assert_tiers_identical(&m, &[Value::I(n)], RunConfig::default()).unwrap();
        }
    }

    #[test]
    fn predecoded_module_is_shareable() {
        let m = swap_loop();
        let pd = std::sync::Arc::new(PredecodedModule::build(&m, &CostModel::ppc405()));
        let mut a = Interpreter::new(&m);
        a.set_predecoded(std::sync::Arc::clone(&pd));
        let mut b = Interpreter::new(&m);
        b.set_predecoded(pd);
        let oa = a.run("main", &[Value::I(9)]).unwrap();
        let ob = b.run("main", &[Value::I(9)]).unwrap();
        assert_eq!(oa, ob);
        assert_eq!(a.tier(), VmTier::Fast);
    }

    #[test]
    fn tier_parse_round_trips() {
        for t in [VmTier::Interp, VmTier::Fast] {
            assert_eq!(VmTier::parse(t.name()), Some(t));
        }
        assert_eq!(VmTier::parse("jit"), None);
        assert_eq!(VmTier::default(), VmTier::Interp);
    }
}
