//! VM-vs-native execution time model.
//!
//! Table I compares each application's runtime on the virtual machine
//! (dynamic translation) against a statically compiled native binary. The
//! paper observes overheads of ~1 % for small embedded applications, ~14 %
//! on average for scientific ones — and, interestingly, *negative* overhead
//! for 179.art and 473.astar, where runtime information let the VM beat
//! static compilation.
//!
//! This module models exactly those effects on top of a measured
//! [`Profile`]:
//!
//! * cold blocks are **interpreted** (per-instruction dispatch cost) until
//!   they reach the hot threshold,
//! * hot blocks are **JIT-compiled** (one-time per-instruction compile
//!   cost) and then run at native speed times a *quality factor* — below
//!   1.0 when runtime information (value profiles, alias freedom) lets the
//!   JIT produce better code than the static compiler.

use crate::cost::CostModel;
use crate::profile::Profile;
use jitise_base::SimTime;
use jitise_ir::Module;

/// Parameters of the dynamic-translation model.
#[derive(Debug, Clone)]
pub struct ExecModel {
    /// Dispatch cycles per interpreted dynamic instruction.
    pub dispatch_cycles: u64,
    /// Block executions before JIT compilation kicks in.
    pub hot_threshold: u64,
    /// One-time compile cycles per static instruction of a hot block.
    pub compile_cycles_per_inst: u64,
    /// Multiplier on native cycles for JIT-compiled code (< 1.0 means the
    /// JIT beats static compilation, as for 179.art in the paper).
    pub jit_quality: f64,
}

impl Default for ExecModel {
    fn default() -> Self {
        ExecModel {
            dispatch_cycles: 12,
            hot_threshold: 50,
            compile_cycles_per_inst: 800,
            jit_quality: 1.0,
        }
    }
}

/// VM / native runtimes and their ratio for one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecTimes {
    /// Native (statically compiled) runtime.
    pub native: SimTime,
    /// VM (dynamically translated) runtime.
    pub vm: SimTime,
    /// `vm / native` — Table I's `Ratio` column.
    pub ratio: f64,
}

impl ExecModel {
    /// Computes VM and native runtimes from a profile.
    pub fn times(&self, module: &Module, profile: &Profile, cost: &CostModel) -> ExecTimes {
        let native_cycles = profile.total_cycles();

        let mut interp_extra: u128 = 0; // dispatch overhead on cold executions
        let mut compile_extra: u128 = 0; // one-time JIT compilation
        let mut interp_native: u128 = 0; // native-cycle share spent while cold

        for key in profile.keys() {
            let count = profile.count(key);
            let block = module.func(key.func).block(key.block);
            let size = block.len() as u64;
            let cycles = profile.block_cycles(key);
            let cold_execs = count.min(self.hot_threshold);
            interp_extra += (cold_execs * size) as u128 * self.dispatch_cycles as u128;
            if count > self.hot_threshold {
                compile_extra += (size * self.compile_cycles_per_inst) as u128;
                // The cold fraction of this block's native cycles ran at
                // interpreter quality (no JIT bonus/penalty).
                interp_native += (cycles as u128 * cold_execs as u128) / count.max(1) as u128;
            } else {
                interp_native += cycles as u128;
            }
        }

        let hot_native = native_cycles as u128 - interp_native.min(native_cycles as u128);
        let vm_cycles = interp_native as f64
            + hot_native as f64 * self.jit_quality
            + interp_extra as f64
            + compile_extra as f64;

        let native = cost.cycles_to_time(native_cycles);
        let vm = cost.cycles_to_time(vm_cycles.round() as u64);
        ExecTimes {
            native,
            vm,
            ratio: if native_cycles == 0 {
                1.0
            } else {
                vm_cycles / native_cycles as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BlockKey;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    fn looped_module_and_profile(iters: u64) -> (Module, Profile) {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let _ = b.mul(i, i);
        });
        b.ret(Op::ci32(0));
        let mut m = Module::new("t");
        m.add_func(b.finish());
        let mut p = Profile::new();
        p.record(BlockKey::new(FuncId(0), BlockId(0)), 5, 1);
        for _ in 0..iters {
            p.record(BlockKey::new(FuncId(0), BlockId(1)), 4, 2);
            p.record(BlockKey::new(FuncId(0), BlockId(2)), 8, 2);
        }
        (m, p)
    }

    #[test]
    fn hot_code_amortizes_overhead() {
        let model = ExecModel::default();
        let cost = CostModel::ppc405();
        let (m, cold) = looped_module_and_profile(10);
        let (_, hot) = looped_module_and_profile(1_000_000);
        let cold_times = model.times(&m, &cold, &cost);
        let hot_times = model.times(&m, &hot, &cost);
        // Short runs are dominated by interpretation: large ratio.
        assert!(cold_times.ratio > 2.0, "cold ratio {}", cold_times.ratio);
        // Long runs amortize to near 1.0.
        assert!(
            hot_times.ratio < 1.05,
            "hot ratio {} should approach 1",
            hot_times.ratio
        );
        assert!(hot_times.vm >= hot_times.native);
    }

    #[test]
    fn quality_below_one_can_beat_native() {
        let model = ExecModel {
            jit_quality: 0.90,
            ..Default::default()
        };
        let cost = CostModel::ppc405();
        let (m, hot) = looped_module_and_profile(1_000_000);
        let t = model.times(&m, &hot, &cost);
        assert!(
            t.ratio < 1.0,
            "VM should beat native with quality 0.9, got {}",
            t.ratio
        );
        assert!(t.vm < t.native);
    }

    #[test]
    fn empty_profile_is_neutral() {
        let (m, _) = looped_module_and_profile(1);
        let t = ExecModel::default().times(&m, &Profile::new(), &CostModel::ppc405());
        assert_eq!(t.ratio, 1.0);
        assert_eq!(t.native, SimTime::ZERO);
    }

    #[test]
    fn dispatch_scales_cold_cost() {
        let cost = CostModel::ppc405();
        let (m, cold) = looped_module_and_profile(10);
        let slow = ExecModel {
            dispatch_cycles: 40,
            ..Default::default()
        }
        .times(&m, &cold, &cost);
        let fast = ExecModel {
            dispatch_cycles: 4,
            ..Default::default()
        }
        .times(&m, &cold, &cost);
        assert!(slow.ratio > fast.ratio);
    }
}
