//! Code-coverage classification (§IV-C).
//!
//! "After execution, we compare the change in execution frequency per block
//! between the different runs. If the frequency is equal to 0 the code is
//! marked as dead. If the frequency is different from 0 but did not change
//! for different inputs the code is marked as constant and if the frequency
//! has changed, the block is marked as live."
//!
//! Percentages are instruction-weighted ("relative percentages of the
//! *size* of live, dead and constant code").

use crate::profile::{BlockKey, Profile};
use jitise_ir::Module;
use std::collections::HashMap;

/// Coverage class of one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageClass {
    /// Executed, frequency varies with the input data set.
    Live,
    /// Never executed in any run.
    Dead,
    /// Executed with identical frequency in every run.
    Const,
}

/// Result of the coverage analysis.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Per-block classification.
    pub classes: HashMap<BlockKey, CoverageClass>,
    /// Instruction-weighted fraction of live code (Table I `live` column).
    pub live_frac: f64,
    /// Instruction-weighted fraction of dead code (`dead` column).
    pub dead_frac: f64,
    /// Instruction-weighted fraction of constant code (`const` column).
    pub const_frac: f64,
}

impl CoverageReport {
    /// Classification of one block (Dead for unknown blocks).
    pub fn class_of(&self, key: BlockKey) -> CoverageClass {
        self.classes
            .get(&key)
            .copied()
            .unwrap_or(CoverageClass::Dead)
    }
}

/// Classifies every block of `module` from profiles of **at least two**
/// runs with different input data sets.
///
/// Panics if fewer than two profiles are supplied — with a single run,
/// live and constant code are indistinguishable by definition.
pub fn classify(module: &Module, profiles: &[Profile]) -> CoverageReport {
    assert!(
        profiles.len() >= 2,
        "coverage classification requires >= 2 dataset profiles, got {}",
        profiles.len()
    );
    let mut classes = HashMap::new();
    let mut live_ins = 0usize;
    let mut dead_ins = 0usize;
    let mut const_ins = 0usize;

    for key in Profile::all_blocks(module) {
        let counts: Vec<u64> = profiles.iter().map(|p| p.count(key)).collect();
        let class = if counts.iter().all(|&c| c == 0) {
            CoverageClass::Dead
        } else if counts.windows(2).all(|w| w[0] == w[1]) {
            CoverageClass::Const
        } else {
            CoverageClass::Live
        };
        let size = module.func(key.func).block(key.block).len();
        match class {
            CoverageClass::Live => live_ins += size,
            CoverageClass::Dead => dead_ins += size,
            CoverageClass::Const => const_ins += size,
        }
        classes.insert(key, class);
    }

    let total = (live_ins + dead_ins + const_ins).max(1) as f64;
    CoverageReport {
        classes,
        live_frac: live_ins as f64 / total,
        dead_frac: dead_ins as f64 / total,
        const_frac: const_ins as f64 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    /// Builds a module with 3 one-instruction blocks in sequence.
    fn three_block_module() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let b1 = b.new_block("b1");
        let b2 = b.new_block("b2");
        let x = b.add(Op::Arg(0), Op::ci32(1));
        b.br(b1);
        b.switch_to(b1);
        let y = b.add(x, Op::ci32(2));
        b.br(b2);
        b.switch_to(b2);
        let z = b.add(y, Op::ci32(3));
        b.ret(z);
        let mut m = Module::new("t");
        m.add_func(b.finish());
        m
    }

    fn key(b: u32) -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(b))
    }

    #[test]
    fn classifies_three_ways() {
        let m = three_block_module();
        let mut p1 = Profile::new();
        p1.record(key(0), 1, 1); // const: same in both
        p1.record(key(1), 1, 1); // live: varies
                                 // block 2 dead: never recorded
        let mut p2 = Profile::new();
        p2.record(key(0), 1, 1);
        p2.record(key(1), 1, 1);
        p2.record(key(1), 1, 1); // freq 2 vs 1 -> live

        let report = classify(&m, &[p1, p2]);
        assert_eq!(report.class_of(key(0)), CoverageClass::Const);
        assert_eq!(report.class_of(key(1)), CoverageClass::Live);
        assert_eq!(report.class_of(key(2)), CoverageClass::Dead);
        // Each block has exactly 1 instruction -> thirds.
        assert!((report.live_frac - 1.0 / 3.0).abs() < 1e-9);
        assert!((report.dead_frac - 1.0 / 3.0).abs() < 1e-9);
        assert!((report.const_frac - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = three_block_module();
        let mut p1 = Profile::new();
        p1.record(key(0), 1, 1);
        let mut p2 = Profile::new();
        p2.record(key(0), 1, 1);
        let r = classify(&m, &[p1, p2]);
        assert!((r.live_frac + r.dead_frac + r.const_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = ">= 2 dataset profiles")]
    fn requires_two_profiles() {
        let m = three_block_module();
        classify(&m, &[Profile::new()]);
    }

    #[test]
    fn three_profiles_tightens_const() {
        let m = three_block_module();
        let mk = |n: u64| {
            let mut p = Profile::new();
            for _ in 0..n {
                p.record(key(0), 1, 1);
            }
            p
        };
        // Same freq in runs 1 & 2 but different in run 3 -> live.
        let r = classify(&m, &[mk(5), mk(5), mk(6)]);
        assert_eq!(r.class_of(key(0)), CoverageClass::Live);
    }
}
