//! Kernel-size analysis (§IV-C).
//!
//! "We define the kernel of an application as the code that is responsible
//! for more than 90 % of the execution time. For determining the kernel
//! size we sort the basic blocks by their total execution time. Then we
//! select as many basic blocks as required (in the order of execution time)
//! until the threshold of 90 % is reached. The size of the kernel is
//! measured as the total number of instructions contained in these basic
//! blocks."

use crate::profile::{BlockKey, Profile};
use jitise_ir::Module;

/// Default kernel threshold (90 % of execution time).
pub const KERNEL_THRESHOLD: f64 = 0.90;

/// Result of the kernel analysis.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Blocks forming the kernel, hottest first.
    pub blocks: Vec<BlockKey>,
    /// Static instructions inside the kernel blocks (paper: 1960 for
    /// scientific apps, 67 for embedded on average).
    pub kernel_insts: usize,
    /// Kernel size as a fraction of total static instructions (Table I
    /// `size` column).
    pub size_frac: f64,
    /// Fraction of execution time actually covered by the selected blocks
    /// (Table I `freq` column; ≥ threshold unless the program is smaller).
    pub time_frac: f64,
}

/// Computes the kernel of `module` under `profile` at `threshold` (use
/// [`KERNEL_THRESHOLD`] for the paper's 90 % rule).
pub fn kernel(module: &Module, profile: &Profile, threshold: f64) -> KernelReport {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0,1]"
    );
    let total_cycles = profile.total_cycles();
    let total_insts: usize = module.num_insts();
    if total_cycles == 0 {
        return KernelReport {
            blocks: Vec::new(),
            kernel_insts: 0,
            size_frac: 0.0,
            time_frac: 0.0,
        };
    }

    let mut covered: u64 = 0;
    let mut blocks = Vec::new();
    let mut kernel_insts = 0usize;
    for (key, cycles) in profile.hottest_blocks() {
        if covered as f64 >= threshold * total_cycles as f64 {
            break;
        }
        covered += cycles;
        kernel_insts += module.func(key.func).block(key.block).len();
        blocks.push(key);
    }

    KernelReport {
        blocks,
        kernel_insts,
        size_frac: if total_insts == 0 {
            0.0
        } else {
            kernel_insts as f64 / total_insts as f64
        },
        time_frac: covered as f64 / total_cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, FuncId, FunctionBuilder, Operand as Op, Type};

    /// Module with blocks of sizes 1, 2, 3 instructions.
    fn module() -> Module {
        let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
        let b1 = b.new_block("b1");
        let b2 = b.new_block("b2");
        let x = b.add(Op::Arg(0), Op::ci32(1)); // entry: 1 inst
        b.br(b1);
        b.switch_to(b1); // b1: 2 insts
        let y = b.add(x, Op::ci32(2));
        let y2 = b.mul(y, y);
        b.br(b2);
        b.switch_to(b2); // b2: 3 insts
        let z = b.add(y2, Op::ci32(3));
        let z2 = b.mul(z, z);
        let z3 = b.xor(z2, z);
        b.ret(z3);
        let mut m = Module::new("t");
        m.add_func(b.finish());
        m
    }

    fn key(b: u32) -> BlockKey {
        BlockKey::new(FuncId(0), BlockId(b))
    }

    #[test]
    fn selects_hottest_until_threshold() {
        let m = module();
        let mut p = Profile::new();
        p.record(key(0), 80, 1); // 80 % of time, 1 inst
        p.record(key(1), 15, 2); // 15 %
        p.record(key(2), 5, 3); // 5 %
        let r = kernel(&m, &p, 0.90);
        // Needs blocks 0 and 1 to reach 95 % >= 90 %.
        assert_eq!(r.blocks, vec![key(0), key(1)]);
        assert_eq!(r.kernel_insts, 3);
        assert!((r.size_frac - 3.0 / 6.0).abs() < 1e-9);
        assert!((r.time_frac - 0.95).abs() < 1e-9);
    }

    #[test]
    fn single_dominant_block() {
        let m = module();
        let mut p = Profile::new();
        p.record(key(2), 99, 3);
        p.record(key(0), 1, 1);
        let r = kernel(&m, &p, 0.90);
        assert_eq!(r.blocks, vec![key(2)]);
        assert_eq!(r.kernel_insts, 3);
        assert!((r.time_frac - 0.99).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_yields_empty_kernel() {
        let m = module();
        let r = kernel(&m, &Profile::new(), 0.90);
        assert!(r.blocks.is_empty());
        assert_eq!(r.kernel_insts, 0);
    }

    #[test]
    fn threshold_one_takes_everything_executed() {
        let m = module();
        let mut p = Profile::new();
        p.record(key(0), 50, 1);
        p.record(key(1), 50, 2);
        let r = kernel(&m, &p, 1.0);
        assert_eq!(r.blocks.len(), 2);
        assert!((r.time_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        kernel(&module(), &Profile::new(), 1.5);
    }
}
