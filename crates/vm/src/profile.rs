//! Execution profiles.
//!
//! "We have determined these values by executing each application for
//! different input data sets and recording the execution frequency of each
//! basic block" (§IV-C). A [`Profile`] is that record: per-block execution
//! counts and cycle totals for one run.

use jitise_base::SimTime;
use jitise_ir::{BlockId, FuncId, Module};
use std::collections::{HashMap, VecDeque};

/// Identifies one basic block in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    /// Function containing the block.
    pub func: FuncId,
    /// The block.
    pub block: BlockId,
}

impl BlockKey {
    /// Convenience constructor.
    pub fn new(func: FuncId, block: BlockId) -> Self {
        BlockKey { func, block }
    }
}

/// Per-block counters for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    counts: HashMap<BlockKey, u64>,
    cycles: HashMap<BlockKey, u64>,
    total_cycles: u64,
    total_insts: u64,
}

impl Profile {
    /// Empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Records one execution of a block costing `cycles` and executing
    /// `insts` dynamic instructions.
    pub fn record(&mut self, key: BlockKey, cycles: u64, insts: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        *self.cycles.entry(key).or_insert(0) += cycles;
        self.total_cycles += cycles;
        self.total_insts += insts;
    }

    /// Records `execs` executions of a block totalling `cycles` cycles and
    /// `insts` dynamic instructions. Equivalent to `execs` calls to
    /// [`Profile::record`] with per-execution averages; the fast dispatch
    /// tier uses this to merge its dense per-frame accumulators. `execs`
    /// must be ≥ 1 (a zero-execution record would create an entry the
    /// interpreter never creates, breaking profile equality).
    pub fn record_many(&mut self, key: BlockKey, execs: u64, cycles: u64, insts: u64) {
        debug_assert!(execs > 0, "record_many with zero executions");
        *self.counts.entry(key).or_insert(0) += execs;
        *self.cycles.entry(key).or_insert(0) += cycles;
        self.total_cycles += cycles;
        self.total_insts += insts;
    }

    /// Execution count of a block (0 if never executed).
    pub fn count(&self, key: BlockKey) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Cycles attributed to a block.
    pub fn block_cycles(&self, key: BlockKey) -> u64 {
        self.cycles.get(&key).copied().unwrap_or(0)
    }

    /// Total cycles of the run.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total dynamic instruction count of the run.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// All recorded blocks.
    pub fn keys(&self) -> impl Iterator<Item = BlockKey> + '_ {
        self.counts.keys().copied()
    }

    /// All blocks of a module (executed or not), for coverage analysis.
    pub fn all_blocks(m: &Module) -> Vec<BlockKey> {
        let mut out = Vec::with_capacity(m.num_blocks());
        for fid in m.func_ids() {
            for bid in m.func(fid).block_ids() {
                out.push(BlockKey::new(fid, bid));
            }
        }
        out
    }

    /// Merges another profile into this one (summing counters).
    pub fn merge(&mut self, other: &Profile) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.cycles {
            *self.cycles.entry(*k).or_insert(0) += v;
        }
        self.total_cycles += other.total_cycles;
        self.total_insts += other.total_insts;
    }

    /// Scales all counters by an integer factor. Used to extrapolate a
    /// measured profile to a longer run of the same workload (the
    /// evaluation harness profiles a shortened input and scales to the
    /// paper's reported runtimes; see DESIGN.md §1).
    pub fn scaled(&self, factor: u64) -> Profile {
        let mut p = self.clone();
        for v in p.counts.values_mut() {
            *v *= factor;
        }
        for v in p.cycles.values_mut() {
            *v *= factor;
        }
        p.total_cycles *= factor;
        p.total_insts *= factor;
        p
    }

    /// Blocks sorted by attributed cycles, hottest first.
    pub fn hottest_blocks(&self) -> Vec<(BlockKey, u64)> {
        let mut v: Vec<(BlockKey, u64)> = self.cycles.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Simulated wall time of the run at `clock_hz`.
    pub fn time_at(&self, clock_hz: u64) -> SimTime {
        let ns = (self.total_cycles as u128 * 1_000_000_000u128) / clock_hz as u128;
        SimTime::from_nanos(ns as u64)
    }
}

/// Sliding-window hotness tracker: the per-run [`Profile`]s of the last
/// `capacity` workload runs.
///
/// A single cumulative profile can never notice a *phase change* — an old
/// hot set's counts dominate forever. The window forgets: once the
/// workload rotates its hot set, the stale blocks' share of windowed
/// cycles decays to zero within `capacity` runs, which is exactly the
/// signal the storm runtime's phase detector consumes. Everything here is
/// integer arithmetic over simulated cycle counts, so two runs with the
/// same seed produce bit-identical windows regardless of host or worker
/// count.
#[derive(Debug, Clone, Default)]
pub struct HotnessWindow {
    capacity: usize,
    profiles: VecDeque<Profile>,
}

impl HotnessWindow {
    /// A window retaining the last `capacity` (≥ 1) run profiles.
    pub fn new(capacity: usize) -> HotnessWindow {
        HotnessWindow {
            capacity: capacity.max(1),
            profiles: VecDeque::new(),
        }
    }

    /// Pushes one run's profile, forgetting the oldest if full.
    pub fn push(&mut self, p: Profile) {
        if self.profiles.len() == self.capacity {
            self.profiles.pop_front();
        }
        self.profiles.push_back(p);
    }

    /// Runs currently retained.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if no runs are retained.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// True once `capacity` runs are retained (the detector only trusts a
    /// full window).
    pub fn is_full(&self) -> bool {
        self.profiles.len() == self.capacity
    }

    /// Forgets everything (e.g. after a hot-swap, so the next decision is
    /// based purely on post-swap behavior).
    pub fn clear(&mut self) {
        self.profiles.clear();
    }

    /// The merged profile of every retained run — what a re-specialization
    /// hands to the candidate search as "the workload's current behavior".
    pub fn aggregate(&self) -> Profile {
        let mut out = Profile::new();
        for p in &self.profiles {
            out.merge(p);
        }
        out
    }

    /// Cycles attributed to `keys` across the window.
    pub fn cycles_of(&self, keys: &[BlockKey]) -> u64 {
        self.profiles
            .iter()
            .map(|p| keys.iter().map(|&k| p.block_cycles(k)).sum::<u64>())
            .sum()
    }

    /// Total cycles across the window.
    pub fn total_cycles(&self) -> u64 {
        self.profiles.iter().map(|p| p.total_cycles()).sum()
    }

    /// The share of windowed cycles attributed to `keys`, in `[0, 1]`
    /// (0 for an empty window). A deterministic ratio of two exact
    /// integer counts.
    pub fn cycles_share(&self, keys: &[BlockKey]) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        self.cycles_of(keys) as f64 / total as f64
    }

    /// Block executions of `key` across the window.
    pub fn count_of(&self, key: BlockKey) -> u64 {
        self.profiles.iter().map(|p| p.count(key)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: u32, b: u32) -> BlockKey {
        BlockKey::new(FuncId(f), BlockId(b))
    }

    #[test]
    fn record_and_query() {
        let mut p = Profile::new();
        p.record(key(0, 0), 10, 3);
        p.record(key(0, 0), 10, 3);
        p.record(key(0, 1), 50, 7);
        assert_eq!(p.count(key(0, 0)), 2);
        assert_eq!(p.block_cycles(key(0, 0)), 20);
        assert_eq!(p.count(key(1, 0)), 0);
        assert_eq!(p.total_cycles(), 70);
        assert_eq!(p.total_insts(), 13);
    }

    #[test]
    fn merge_sums() {
        let mut a = Profile::new();
        a.record(key(0, 0), 5, 1);
        let mut b = Profile::new();
        b.record(key(0, 0), 7, 2);
        b.record(key(0, 1), 3, 1);
        a.merge(&b);
        assert_eq!(a.count(key(0, 0)), 2);
        assert_eq!(a.block_cycles(key(0, 0)), 12);
        assert_eq!(a.total_cycles(), 15);
    }

    #[test]
    fn scaling() {
        let mut p = Profile::new();
        p.record(key(0, 0), 5, 2);
        let s = p.scaled(10);
        assert_eq!(s.count(key(0, 0)), 10);
        assert_eq!(s.total_cycles(), 50);
        assert_eq!(s.total_insts(), 20);
        // Original untouched.
        assert_eq!(p.count(key(0, 0)), 1);
    }

    #[test]
    fn hottest_ordering_deterministic() {
        let mut p = Profile::new();
        p.record(key(0, 0), 10, 1);
        p.record(key(0, 1), 30, 1);
        p.record(key(0, 2), 10, 1);
        let hot = p.hottest_blocks();
        assert_eq!(hot[0].0, key(0, 1));
        // Ties broken by key order.
        assert_eq!(hot[1].0, key(0, 0));
        assert_eq!(hot[2].0, key(0, 2));
    }

    #[test]
    fn time_conversion() {
        let mut p = Profile::new();
        p.record(key(0, 0), 300_000_000, 1);
        assert_eq!(p.time_at(300_000_000), SimTime::from_secs(1));
    }

    fn run_profile(k: BlockKey, cycles: u64) -> Profile {
        let mut p = Profile::new();
        p.record(k, cycles, 1);
        p
    }

    #[test]
    fn window_forgets_a_rotated_hot_set() {
        let (a, b) = (key(0, 0), key(0, 1));
        let mut w = HotnessWindow::new(3);
        assert!(w.is_empty());
        for _ in 0..3 {
            w.push(run_profile(a, 100));
        }
        assert!(w.is_full());
        assert!((w.cycles_share(&[a]) - 1.0).abs() < 1e-12);
        // Phase change: the workload rotates to block b.
        for i in 0..3 {
            w.push(run_profile(b, 100));
            let expected = (2 - i) as f64 / 3.0;
            assert!(
                (w.cycles_share(&[a]) - expected).abs() < 1e-12,
                "stale share must decay run by run"
            );
        }
        assert_eq!(w.cycles_of(&[a]), 0, "old hot set fully forgotten");
        assert_eq!(w.count_of(b), 3);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn window_aggregate_merges_retained_runs_only() {
        let k0 = key(0, 0);
        let mut w = HotnessWindow::new(2);
        w.push(run_profile(k0, 10));
        w.push(run_profile(k0, 20));
        w.push(run_profile(k0, 30)); // evicts the 10-cycle run
        let agg = w.aggregate();
        assert_eq!(agg.total_cycles(), 50);
        assert_eq!(agg.count(k0), 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.cycles_share(&[k0]), 0.0, "empty window has zero share");
    }
}
