//! # jitise-vm — virtual machine, profiler, and program analyses
//!
//! The paper's applications "execute on a virtual machine" (LLVM's JIT);
//! the VM supplies the runtime information — block execution frequencies,
//! hot-spot structure — that makes *just-in-time* ISE possible at all
//! (Fig. 1). This crate provides:
//!
//! * [`interp::Interpreter`] — a direct interpreter for `jitise-ir` modules
//!   with a linear memory, call stack, and external math functions;
//! * [`cost::CostModel`] — a PowerPC-405 cycle-cost model (the Woolcano
//!   base CPU); every executed instruction is charged cycles, and reported
//!   runtimes are *simulated seconds* at the core clock;
//! * [`profile::Profile`] — per-block execution counts and cycle totals
//!   (the data behind Tables I and II);
//! * [`coverage`] — the live/dead/const classification of §IV-C, computed
//!   by comparing block frequencies across input datasets;
//! * [`kernel`] — the 90 %-execution-time kernel analysis of §IV-C;
//! * [`exec_model`] — the VM-vs-native execution-time model behind Table
//!   I's `VM`, `Native` and `Ratio` columns.
//!
//! Custom instructions: the interpreter executes
//! [`jitise_ir::InstKind::Custom`] opcodes through a
//! [`interp::CustomHandler`], which the Woolcano architecture model
//! implements. This is how specialized binaries run after the adaptation
//! phase.

pub mod cost;
pub mod coverage;
pub mod exec_model;
pub mod interp;
pub mod kernel;
pub mod mem;
pub mod predecode;
pub mod profile;
pub mod value;

pub use cost::CostModel;
pub use interp::{CustomHandler, ExecOutcome, Interpreter, RunConfig};
pub use predecode::{PredecodedModule, VmTier};
pub use profile::{BlockKey, HotnessWindow, Profile};
pub use value::Value;
