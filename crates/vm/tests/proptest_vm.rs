//! Property tests for the VM: interpreter determinism, profile/cycle
//! accounting consistency, memory round-trips, and the coverage
//! classifier's algebraic properties.

use jitise_ir::{CmpOp, FunctionBuilder, Module, Operand as Op, Type};
use jitise_vm::coverage::{classify, CoverageClass};
use jitise_vm::kernel::kernel;
use jitise_vm::{BlockKey, CostModel, Interpreter, Profile, Value};
use proptest::prelude::*;

fn looped_module(ops: &[(u8, i32)]) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(3), cell);
    b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
        let mut v = b.load(Type::I32, cell);
        v = b.xor(v, i);
        for &(sel, k) in ops {
            let kc = Op::ci32(k);
            v = match sel % 6 {
                0 => b.add(v, kc),
                1 => b.sub(v, kc),
                2 => b.mul(v, kc),
                3 => b.and(v, Op::ci32(k | 0x3f)),
                4 => b.or(v, kc),
                _ => {
                    let c = b.cmp(CmpOp::Slt, v, kc);
                    b.select(c, kc, v)
                }
            };
        }
        b.store(v, cell);
    });
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("p");
    m.add_func(b.finish());
    m
}

fn run(m: &Module, n: i64) -> (Option<Value>, u64, Profile) {
    let mut vm = Interpreter::new(m);
    let out = vm.run("main", &[Value::I(n)]).expect("runs");
    let p = vm.take_profile();
    (out.ret, out.cycles, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interpreter_is_deterministic(
        ops in prop::collection::vec((0u8..6, -30i32..30), 1..12),
        n in 0i64..60,
    ) {
        let m = looped_module(&ops);
        let (r1, c1, _) = run(&m, n);
        let (r2, c2, _) = run(&m, n);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn profile_cycles_match_execution_cycles(
        ops in prop::collection::vec((0u8..6, -30i32..30), 1..12),
        n in 0i64..60,
    ) {
        let m = looped_module(&ops);
        let (_, cycles, profile) = run(&m, n);
        prop_assert_eq!(profile.total_cycles(), cycles);
        // Block counts: header executes n+1 times, body n times.
        let header = profile.count(BlockKey::new(jitise_ir::FuncId(0), jitise_ir::BlockId(1)));
        let body = profile.count(BlockKey::new(jitise_ir::FuncId(0), jitise_ir::BlockId(2)));
        prop_assert_eq!(header, body + 1);
        prop_assert_eq!(body, n as u64);
    }

    #[test]
    fn more_iterations_cost_more(
        ops in prop::collection::vec((0u8..6, -30i32..30), 1..8),
        n in 1i64..40,
    ) {
        let m = looped_module(&ops);
        let (_, c_small, _) = run(&m, n);
        let (_, c_big, _) = run(&m, n * 2);
        prop_assert!(c_big > c_small);
    }

    #[test]
    fn coverage_partition_and_live_detection(
        ops in prop::collection::vec((0u8..6, -30i32..30), 1..8),
        n in 2i64..40,
    ) {
        let m = looped_module(&ops);
        let (_, _, p1) = run(&m, n);
        let (_, _, p2) = run(&m, n + 1);
        let report = classify(&m, &[p1, p2]);
        let total = report.live_frac + report.dead_frac + report.const_frac;
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Loop body varies with input -> live.
        prop_assert_eq!(
            report.class_of(BlockKey::new(jitise_ir::FuncId(0), jitise_ir::BlockId(2))),
            CoverageClass::Live
        );
    }

    #[test]
    fn kernel_threshold_monotone(
        ops in prop::collection::vec((0u8..6, -30i32..30), 1..8),
        n in 5i64..60,
    ) {
        let m = looped_module(&ops);
        let (_, _, p) = run(&m, n);
        let k50 = kernel(&m, &p, 0.5);
        let k90 = kernel(&m, &p, 0.9);
        prop_assert!(k90.kernel_insts >= k50.kernel_insts);
        prop_assert!(k90.time_frac >= 0.9);
        prop_assert!(k90.time_frac >= k50.time_frac);
    }

    #[test]
    fn scaled_profiles_preserve_time_ratios(
        ops in prop::collection::vec((0u8..6, -30i32..30), 1..8),
        n in 1i64..40,
        factor in 2u64..50,
    ) {
        let m = looped_module(&ops);
        let (_, _, p) = run(&m, n);
        let s = p.scaled(factor);
        prop_assert_eq!(s.total_cycles(), p.total_cycles() * factor);
        prop_assert_eq!(s.total_insts(), p.total_insts() * factor);
        // Time conversion truncates to whole nanoseconds, so the scaled
        // time may differ from the naive product by up to `factor` ns.
        let cost = CostModel::ppc405();
        let scaled_ns = cost.cycles_to_time(s.total_cycles()).as_nanos();
        let naive_ns = cost.cycles_to_time(p.total_cycles()).as_nanos() * factor;
        prop_assert!(scaled_ns.abs_diff(naive_ns) <= factor);
    }
}
