//! Ad-hoc dispatch-cost probe: a tight integer loop on both tiers.
//! Run with `cargo run --release -p jitise-vm --example microbench`.

use jitise_ir::{FunctionBuilder, Module, Operand as Op, Type};
use jitise_vm::{Interpreter, Value, VmTier};
use std::time::Instant;

fn main() {
    // 16 dependent adds per iteration, 100k iterations.
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let header = b.new_block("header");
    let body = b.new_block("body");
    let exit = b.new_block("exit");
    let pre = b.current();
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I32);
    let acc = b.phi(Type::I32);
    b.add_incoming(i, pre, Op::ci32(0));
    b.add_incoming(acc, pre, Op::ci32(1));
    let c = b.cmp(jitise_ir::CmpOp::Slt, i, Op::Arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let mut v = acc;
    for k in 0..16 {
        v = b.add(v, Op::ci32(k + 1));
    }
    let i2 = b.add(i, Op::ci32(1));
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, v);
    b.br(header);
    b.switch_to(exit);
    b.ret(acc);
    let mut m = Module::new("micro");
    m.add_func(b.finish());

    for tier in [VmTier::Interp, VmTier::Fast] {
        let mut best = f64::MAX;
        let mut steps = 0;
        for _ in 0..5 {
            let mut vm = Interpreter::new(&m);
            vm.set_tier(tier);
            let t = Instant::now();
            let out = vm.run("main", &[Value::I(100_000)]).unwrap();
            best = best.min(t.elapsed().as_secs_f64());
            steps = out.steps.max(1);
            std::hint::black_box(out);
        }
        println!(
            "{tier:?}: {:.3}ms, {} steps, {:.2} ns/inst",
            best * 1e3,
            steps,
            best * 1e9 / steps as f64
        );
    }
}
