//! Property tests for the store's committed-prefix recovery invariant:
//! for *any* record sequence and *any* truncation point, corruption, or
//! crash budget, reopening the directory restores exactly the fold of
//! the longest committed record prefix — never more, never less, never
//! an error.

use jitise_faults::{CrashSwitch, StoreCrash};
use jitise_store::tempdir::TempDir;
use jitise_store::testfix::sample_entry;
use jitise_store::{FaultTotals, Record, Store, StoreOptions, StoreState};
use proptest::prelude::*;

/// Maps a `(kind, sig)` draw onto one of the three record shapes.
fn mk_record(kind: u8, sig: u64) -> Record {
    match kind {
        0 => Record::CacheEntry(sample_entry(sig)),
        1 => Record::Quarantine {
            signature: sig,
            reason: format!("injected-{sig}"),
        },
        _ => Record::FaultTotals(FaultTotals {
            sessions: sig,
            retries: sig / 2,
            quarantined: sig % 3,
            fault_time_ns: sig.wrapping_mul(11),
        }),
    }
}

fn mk_records(draws: &[(u8, u64)]) -> Vec<Record> {
    draws.iter().map(|&(k, s)| mk_record(k, s)).collect()
}

/// Writes `records` through a default store at `dir` and returns the WAL
/// path (everything lands in the log: the default compaction threshold is
/// far above anything these sequences produce).
fn populate(dir: &TempDir, records: &[Record]) -> std::path::PathBuf {
    let store = Store::open(dir.path()).expect("open fresh store");
    for rec in records {
        store.append(rec.clone()).expect("append");
    }
    dir.path().join("wal.log")
}

/// Byte offsets of each commit boundary in the WAL: the header, then one
/// entry per record. Derived from observed file growth, not from private
/// framing internals.
fn commit_boundaries(records: &[Record]) -> Vec<usize> {
    let dir = TempDir::new("prop-bounds");
    let store = Store::open(dir.path()).expect("open");
    let wal = dir.path().join("wal.log");
    let mut bounds = vec![std::fs::metadata(&wal).expect("wal exists").len() as usize];
    for rec in records {
        store.append(rec.clone()).expect("append");
        bounds.push(std::fs::metadata(&wal).expect("wal exists").len() as usize);
    }
    bounds
}

/// Fingerprints of every prefix fold of `records` (0..=n records).
fn prefix_fingerprints(records: &[Record]) -> Vec<String> {
    (0..=records.len())
        .map(|k| StoreState::from_records(records[..k].to_vec()).fingerprint())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_sequence_roundtrips_through_reopen(
        draws in prop::collection::vec((0u8..3, 1u64..64), 0..10),
    ) {
        let records = mk_records(&draws);
        let expected = StoreState::from_records(records.clone()).fingerprint();
        let dir = TempDir::new("prop-roundtrip");
        populate(&dir, &records);
        let store = Store::open(dir.path()).expect("reopen");
        prop_assert_eq!(store.fingerprint(), expected);
        prop_assert_eq!(store.recovery().records_recovered, records.len() as u64);
        prop_assert_eq!(
            store.recovery().torn_tails_dropped + store.recovery().crc_dropped,
            0
        );
    }

    #[test]
    fn any_truncation_recovers_exactly_the_longest_committed_prefix(
        draws in prop::collection::vec((0u8..3, 1u64..64), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let records = mk_records(&draws);
        let dir = TempDir::new("prop-torn");
        let wal = populate(&dir, &records);
        let full = std::fs::read(&wal).expect("read wal");
        let cut = (cut_frac * full.len() as f64) as usize;
        std::fs::write(&wal, &full[..cut]).expect("truncate wal");

        let bounds = commit_boundaries(&records);
        prop_assert_eq!(*bounds.last().unwrap(), full.len());
        // Number of commit boundaries at or below the cut; the first is
        // the header (0 records), so subtract one. A cut inside the
        // header drops the whole log → 0 records.
        let committed = bounds.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
        let expected = StoreState::from_records(records[..committed].to_vec()).fingerprint();

        let store = Store::open(dir.path()).expect("recovery never fails");
        prop_assert_eq!(store.fingerprint(), expected, "cut {} of {}", cut, full.len());
    }

    #[test]
    fn any_bit_flip_recovers_some_committed_prefix(
        draws in prop::collection::vec((0u8..3, 1u64..64), 1..8),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records = mk_records(&draws);
        let dir = TempDir::new("prop-flip");
        let wal = populate(&dir, &records);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(&wal, &bytes).expect("write damaged wal");

        let store = Store::open(dir.path()).expect("recovery never fails");
        let folds = prefix_fingerprints(&records);
        let got = store.fingerprint();
        prop_assert!(
            folds.contains(&got),
            "flip at byte {} bit {}: recovered {} is not a committed prefix",
            pos, bit, got
        );
    }

    #[test]
    fn any_crash_budget_recovers_exactly_the_acked_records(
        draws in prop::collection::vec((0u8..3, 1u64..64), 1..8),
        budget_frac in 0.0f64..1.0,
    ) {
        let records = mk_records(&draws);
        // Probe the clean session's write volume to scale the budget.
        let total = {
            let dir = TempDir::new("prop-crash-probe");
            let store = Store::open(dir.path()).expect("open");
            for rec in &records {
                store.append(rec.clone()).expect("append");
            }
            store.bytes_written()
        };
        let budget = (budget_frac * total as f64) as u64;

        let dir = TempDir::new("prop-crash");
        let opts = StoreOptions {
            crash: CrashSwitch::armed(StoreCrash { after_bytes: budget }),
            ..StoreOptions::default()
        };
        let mut committed = Vec::new();
        if let Ok(store) = Store::open_with(dir.path(), opts) {
            for rec in &records {
                if store.append(rec.clone()).is_ok() {
                    committed.push(rec.clone());
                }
            }
        }
        let store = Store::open(dir.path()).expect("recovery never fails");
        prop_assert_eq!(
            store.fingerprint(),
            StoreState::from_records(committed).fingerprint(),
            "budget {} of {}", budget, total
        );
    }
}
