//! # jitise-store — crash-consistent persistence for the ASIP-SP session
//!
//! The paper's break-even argument (§VI-A) charges every candidate the
//! full CAD-flow generation time the *first* time it is specialized; a
//! bitstream cache amortizes that cost within one run. This crate makes
//! the amortization survive process death: a versioned on-disk store
//! holding the bitstream cache, the quarantine set, and the fault-ledger
//! totals, so a *second session* of the same application starts warm and
//! reaches break-even sooner.
//!
//! ## Design
//!
//! Two files per store directory:
//!
//! * `wal.log` — an append-only write-ahead log. One header frame
//!   (magic + generation) followed by one CRC-framed [`Record`] per
//!   committed fact. Frames use [`jitise_base::codec::frame`]:
//!   `[len: u32 LE][crc32: u32 LE][payload]`.
//! * `snapshot.bin` — a single CRC-framed image of the folded
//!   [`StoreState`], replaced atomically (write-temp → fsync → rename)
//!   when the WAL grows past [`StoreOptions::compact_threshold`].
//!
//! Records are idempotent upserts, so recovery needs no sequence
//! numbers: load the snapshot (if readable), replay the WAL on top
//! (unless its generation is older than the snapshot's — then it was
//! already folded in), and stop at the first torn or corrupt frame.
//! Recovery never fails: any unreadable piece is dropped, and what
//! remains is exactly the longest committed prefix — never an
//! uncommitted suffix, never a half-applied record.
//!
//! Crash points are simulated, not real: every byte headed for disk is
//! metered through a [`jitise_faults::CrashSwitch`], and the `crashsim`
//! bench sweeps the crash budget across a whole app session asserting
//! the committed-prefix invariant at every byte boundary.

pub mod record;
pub mod tempdir;
pub mod testfix;

mod wal;

pub use record::{CiRecord, FaultTotals, Record, StoreState};
pub use tempdir::TempDir;

use jitise_base::codec::{frame, read_frame, Decoder, Encoder, FrameRead};
use jitise_base::sync::Mutex;
use jitise_base::{Error, Result};
use jitise_faults::{CrashSwitch, FaultInjector, FaultSite};
use jitise_telemetry::{names, Telemetry, Value};
use std::path::{Path, PathBuf};
use wal::LogFile;

/// WAL file name inside the store directory.
const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside the store directory.
const SNAP_FILE: &str = "snapshot.bin";
/// WAL header magic (first frame of every log generation).
const WAL_MAGIC: &str = "JITISE-STORE-WAL-1";
/// Snapshot payload magic.
const SNAP_MAGIC: &str = "JITISE-STORE-SNAP-1";
/// Upper bound on a declared frame payload length; a flipped length bit
/// must not drive an enormous read.
const MAX_FRAME_LEN: u32 = 1 << 28;

/// Store construction knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Compact (fold the WAL into a fresh snapshot) once the log exceeds
    /// this many bytes.
    pub compact_threshold: u64,
    /// Telemetry sink for store metrics and recovery events.
    pub telemetry: Telemetry,
    /// Simulated crash point (byte budget) for crash testing.
    pub crash: CrashSwitch,
    /// Fault injector; [`FaultSite::StoreWal`] corrupts framed record
    /// bytes between commit and platter (silent media corruption).
    pub faults: FaultInjector,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            compact_threshold: 256 * 1024,
            telemetry: Telemetry::disabled(),
            crash: CrashSwitch::disabled(),
            faults: FaultInjector::disabled(),
        }
    }
}

/// What [`Store::open`] found and salvaged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the snapshot that was loaded (0 if none).
    pub snapshot_generation: u64,
    /// The snapshot file existed but was unreadable and got dropped.
    pub snapshot_dropped: bool,
    /// The WAL predated the snapshot (a compaction crashed between the
    /// snapshot rename and the log reset) and was skipped — its records
    /// were already folded into the snapshot.
    pub wal_stale: bool,
    /// WAL records replayed on top of the snapshot.
    pub records_recovered: u64,
    /// Torn (incomplete) tail frames discarded.
    pub torn_tails_dropped: u64,
    /// Structurally complete frames discarded for a CRC/decode failure.
    pub crc_dropped: u64,
    /// Snapshot cache entries discarded for a bitstream CRC failure.
    pub entries_dropped: u64,
    /// Cache entries available after recovery.
    pub recovered_entries: usize,
    /// Quarantined signatures available after recovery.
    pub recovered_quarantine: usize,
}

#[derive(Debug)]
struct Inner {
    state: StoreState,
    wal: LogFile,
    generation: u64,
    /// Set when a crash (or a failed compaction) killed the store; all
    /// further writes are refused, mirroring a dead process.
    dead: bool,
    /// Records appended this session (fault-injection scope key).
    appended: u64,
    /// Bytes this session pushed through the crash switch — the budget
    /// axis the crash-sim sweep walks.
    written: u64,
}

/// A crash-consistent, versioned on-disk store for committed session
/// facts (cache entries, quarantine signatures, fault totals).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    recovery: RecoveryReport,
    inner: Mutex<Inner>,
}

fn header_frame(generation: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_str(WAL_MAGIC).put_varu64(generation);
    frame(&enc.finish())
}

fn decode_wal_header(payload: &[u8]) -> Result<u64> {
    let mut dec = Decoder::new(payload);
    if dec.get_str()? != WAL_MAGIC {
        return Err(Error::Store("bad WAL magic".into()));
    }
    let generation = dec.get_varu64()?;
    if !dec.is_at_end() {
        return Err(Error::Store("trailing bytes after WAL header".into()));
    }
    Ok(generation)
}

fn decode_snapshot(payload: &[u8]) -> Result<(u64, StoreState, usize)> {
    let mut dec = Decoder::new(payload);
    if dec.get_str()? != SNAP_MAGIC {
        return Err(Error::Store("bad snapshot magic".into()));
    }
    let generation = dec.get_varu64()?;
    let body = dec.get_bytes()?;
    if !dec.is_at_end() {
        return Err(Error::Store("trailing bytes after snapshot".into()));
    }
    let (state, dropped) = StoreState::decode(body)?;
    Ok((generation, state, dropped))
}

impl Store {
    /// Opens (or creates) the store at `dir` with default options,
    /// recovering whatever committed state the directory holds.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store> {
        Store::open_with(dir, StoreOptions::default())
    }

    /// [`Store::open`] with explicit options.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Store> {
        let mut recover_span = opts.telemetry.span("store.recover");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Store(format!("create {}: {e}", dir.display())))?;
        wal::sweep_tmp(&dir);

        let mut report = RecoveryReport::default();
        let mut state = StoreState::default();
        let mut snap_gen = 0u64;

        // 1. Snapshot: load if readable, drop wholesale otherwise.
        if let Ok(bytes) = std::fs::read(dir.join(SNAP_FILE)) {
            match read_frame(&bytes, MAX_FRAME_LEN) {
                FrameRead::Frame { payload, .. } => match decode_snapshot(payload) {
                    Ok((generation, snap_state, dropped)) => {
                        snap_gen = generation;
                        state = snap_state;
                        report.entries_dropped = dropped as u64;
                    }
                    Err(_) => report.snapshot_dropped = true,
                },
                FrameRead::End => {}
                FrameRead::TornTail | FrameRead::Corrupt => report.snapshot_dropped = true,
            }
        }
        report.snapshot_generation = snap_gen;

        // 2. WAL: replay committed frames on top, unless the log predates
        // the snapshot (then its records are already folded in). Scanning
        // stops at the first torn or corrupt frame — everything after an
        // unreadable frame is untrusted.
        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = std::fs::read(&wal_path).unwrap_or_default();
        let mut committed = 0usize;
        let mut keep_wal = false;
        let mut generation = snap_gen;
        match read_frame(&wal_bytes, MAX_FRAME_LEN) {
            FrameRead::Frame { payload, consumed } => match decode_wal_header(payload) {
                Ok(wal_gen) if wal_gen < snap_gen => report.wal_stale = true,
                Ok(wal_gen) => {
                    generation = wal_gen;
                    keep_wal = true;
                    committed = consumed;
                    let mut offset = consumed;
                    loop {
                        match read_frame(&wal_bytes[offset..], MAX_FRAME_LEN) {
                            FrameRead::Frame { payload, consumed } => {
                                match Record::decode(payload) {
                                    Ok(rec) => {
                                        state.apply(rec);
                                        report.records_recovered += 1;
                                        offset += consumed;
                                        committed = offset;
                                    }
                                    Err(_) => {
                                        report.crc_dropped += 1;
                                        break;
                                    }
                                }
                            }
                            FrameRead::TornTail => {
                                report.torn_tails_dropped += 1;
                                break;
                            }
                            FrameRead::Corrupt => {
                                report.crc_dropped += 1;
                                break;
                            }
                            FrameRead::End => break,
                        }
                    }
                }
                Err(_) => report.crc_dropped += 1,
            },
            FrameRead::End => {}
            FrameRead::TornTail => report.torn_tails_dropped += 1,
            FrameRead::Corrupt => report.crc_dropped += 1,
        }

        // 3. Reopen the log: keep the committed prefix, or start a fresh
        // generation when the old log was stale/unreadable.
        let mut written = 0u64;
        let wal = if keep_wal {
            LogFile::open_at(&wal_path, committed as u64)?
        } else {
            let mut log = LogFile::open_at(&wal_path, 0)?;
            let header = header_frame(generation);
            log.append(&header, &opts.crash)?;
            written = header.len() as u64;
            log
        };

        report.recovered_entries = state.entries.len();
        report.recovered_quarantine = state.quarantine.len();

        let tel = &opts.telemetry;
        tel.add(names::STORE_RECOVERIES, 1);
        tel.add(names::STORE_RECORDS_RECOVERED, report.records_recovered);
        tel.add(names::STORE_TORN_TAILS, report.torn_tails_dropped);
        tel.add(
            names::STORE_CRC_DROPS,
            report.crc_dropped + report.entries_dropped,
        );
        tel.event(
            "store.recovered",
            &[
                ("entries", Value::U64(report.recovered_entries as u64)),
                ("quarantine", Value::U64(report.recovered_quarantine as u64)),
                ("records", Value::U64(report.records_recovered)),
                ("torn", Value::U64(report.torn_tails_dropped)),
                ("crc_dropped", Value::U64(report.crc_dropped)),
                ("snapshot_generation", Value::U64(snap_gen)),
                ("wal_stale", Value::Bool(report.wal_stale)),
            ],
        );
        recover_span.field("records", Value::U64(report.records_recovered));
        recover_span.field("entries", Value::U64(report.recovered_entries as u64));
        recover_span.field("torn", Value::U64(report.torn_tails_dropped));
        recover_span.field("crc_dropped", Value::U64(report.crc_dropped));
        recover_span.end();

        Ok(Store {
            dir,
            opts,
            recovery: report,
            inner: Mutex::new(Inner {
                state,
                wal,
                generation,
                dead: false,
                appended: 0,
                written,
            }),
        })
    }

    /// Appends one committed record: frame → (optional fault corruption)
    /// → crash-metered write + sync → apply to the in-memory state. The
    /// state is updated *only* when every byte reached the log, so the
    /// in-memory fold always equals the fold of the on-disk committed
    /// prefix. May trigger a compaction past the threshold; a compaction
    /// crash does not un-commit the freshly appended record.
    pub fn append(&self, rec: Record) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.dead || inner.wal.is_dead() {
            self.opts.telemetry.add(names::STORE_APPEND_FAILURES, 1);
            return Err(Error::Store("store is dead after a crash".into()));
        }
        let mut framed = frame(&rec.encode());
        // Silent media corruption: the in-session write "succeeds", the
        // damage only surfaces as a CRC drop on recovery.
        self.opts
            .faults
            .scope(inner.appended, 1)
            .corrupt(FaultSite::StoreWal, &mut framed);
        match inner.wal.append(&framed, &self.opts.crash) {
            Ok(()) => {
                inner.written += framed.len() as u64;
                inner.appended += 1;
                inner.state.apply(rec);
                self.opts.telemetry.add(names::STORE_RECORDS_APPENDED, 1);
                if inner.wal.len() > self.opts.compact_threshold {
                    // The record is committed either way; a compaction
                    // crash just kills the store for later writes.
                    let _ = self.compact_locked(&mut inner);
                }
                Ok(())
            }
            Err(e) => {
                inner.dead = true;
                self.opts.telemetry.add(names::STORE_APPEND_FAILURES, 1);
                Err(e)
            }
        }
    }

    /// Folds the WAL into a fresh snapshot generation and resets the log.
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.dead || inner.wal.is_dead() {
            return Err(Error::Store("store is dead after a crash".into()));
        }
        let mut compact_span = self.opts.telemetry.span("store.compact");
        let generation = inner.generation + 1;
        let mut enc = Encoder::new();
        enc.put_str(SNAP_MAGIC).put_varu64(generation);
        enc.put_bytes(&inner.state.encode());
        let framed = frame(&enc.finish());
        if let Err(e) = wal::write_atomic(&self.dir, SNAP_FILE, &framed, &self.opts.crash) {
            inner.dead = true;
            return Err(e);
        }
        // Commit point between the snapshot rename and the log reset: a
        // crash here leaves a *stale* WAL (generation < snapshot's) that
        // recovery must skip, since its records are already folded in.
        if self.opts.crash.admit(1) < 1 {
            inner.dead = true;
            return Err(Error::Store("simulated crash before WAL reset".into()));
        }
        inner.written += framed.len() as u64 + 2; // snapshot + rename + reset commits
        inner.wal = match LogFile::open_at(&self.dir.join(WAL_FILE), 0) {
            Ok(log) => log,
            Err(e) => {
                inner.dead = true;
                return Err(e);
            }
        };
        let header = header_frame(generation);
        if let Err(e) = inner.wal.append(&header, &self.opts.crash) {
            inner.dead = true;
            return Err(e);
        }
        inner.written += header.len() as u64;
        inner.generation = generation;
        self.opts.telemetry.add(names::STORE_COMPACTIONS, 1);
        compact_span.field("generation", Value::U64(generation));
        compact_span.field("entries", Value::U64(inner.state.entries.len() as u64));
        compact_span.end();
        Ok(())
    }

    /// A copy of the current folded state.
    pub fn state(&self) -> StoreState {
        self.inner.lock().state.clone()
    }

    /// Deterministic digest of the current state (see
    /// [`StoreState::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        self.inner.lock().state.fingerprint()
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Bytes this session pushed through the crash switch — the axis the
    /// crash-sim sweep walks.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().written
    }

    /// True once a crash killed this store (writes are refused).
    pub fn is_dead(&self) -> bool {
        let inner = self.inner.lock();
        inner.dead || inner.wal.is_dead()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use crate::testfix::sample_entry;
    use jitise_faults::{FaultPlan, StoreCrash};

    fn sample_records() -> Vec<Record> {
        vec![
            Record::CacheEntry(sample_entry(1)),
            Record::Quarantine {
                signature: 2,
                reason: "cad: injected route fault".into(),
            },
            Record::CacheEntry(sample_entry(3)),
            Record::FaultTotals(FaultTotals {
                sessions: 1,
                retries: 2,
                quarantined: 1,
                fault_time_ns: 55,
            }),
        ]
    }

    fn opts_with(crash: CrashSwitch, threshold: u64) -> StoreOptions {
        StoreOptions {
            compact_threshold: threshold,
            crash,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn fresh_open_then_reopen_restores_everything() {
        let dir = TempDir::new("reopen");
        let records = sample_records();
        let expected = StoreState::from_records(records.clone()).fingerprint();
        {
            let store = Store::open(dir.path()).unwrap();
            assert!(store.state().is_empty());
            for rec in records {
                store.append(rec).unwrap();
            }
            assert_eq!(store.fingerprint(), expected);
        }
        let store = Store::open(dir.path()).unwrap();
        assert_eq!(store.fingerprint(), expected);
        let rec = store.recovery();
        assert_eq!(rec.records_recovered, 4);
        assert_eq!(rec.recovered_entries, 2);
        assert_eq!(rec.recovered_quarantine, 1);
        assert_eq!(rec.torn_tails_dropped + rec.crc_dropped, 0);
        assert!(!rec.wal_stale && !rec.snapshot_dropped);
    }

    #[test]
    fn every_truncation_point_recovers_the_longest_committed_prefix() {
        let dir = TempDir::new("truncate");
        let records = sample_records();
        {
            let store = Store::open(dir.path()).unwrap();
            for rec in records.clone() {
                store.append(rec).unwrap();
            }
        }
        let wal_path = dir.path().join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        // Frame boundaries: header, then one frame per record.
        let mut boundaries = vec![header_frame(0).len()];
        for rec in &records {
            boundaries.push(boundaries.last().unwrap() + frame(&rec.encode()).len());
        }
        assert_eq!(*boundaries.last().unwrap(), full.len());
        for cut in 0..=full.len() {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let committed = boundaries.iter().filter(|&&b| b <= cut).count();
            let expected = if committed == 0 {
                StoreState::default() // header torn: whole log dropped
            } else {
                StoreState::from_records(records[..committed - 1].to_vec())
            };
            let store = Store::open(dir.path()).unwrap();
            assert_eq!(
                store.fingerprint(),
                expected.fingerprint(),
                "cut at byte {cut}"
            );
        }
    }

    #[test]
    fn crash_sweep_always_recovers_exactly_the_committed_records() {
        // Probe a clean session for its total write volume, then sweep the
        // crash budget across every byte boundary — with compaction both
        // disabled (huge threshold) and aggressive (compact every append).
        for threshold in [u64::MAX, 1] {
            let total = {
                let dir = TempDir::new("probe");
                let store =
                    Store::open_with(dir.path(), opts_with(CrashSwitch::disabled(), threshold))
                        .unwrap();
                for rec in sample_records() {
                    store.append(rec).unwrap();
                }
                store.bytes_written()
            };
            for budget in 0..=total {
                let dir = TempDir::new("sweep");
                let crash = CrashSwitch::armed(StoreCrash {
                    after_bytes: budget,
                });
                let mut committed = Vec::new();
                if let Ok(store) = Store::open_with(dir.path(), opts_with(crash, threshold)) {
                    for rec in sample_records() {
                        if store.append(rec.clone()).is_ok() {
                            committed.push(rec);
                        }
                    }
                }
                let store = Store::open(dir.path()).unwrap();
                assert_eq!(
                    store.fingerprint(),
                    StoreState::from_records(committed).fingerprint(),
                    "threshold {threshold}, budget {budget} of {total}"
                );
            }
        }
    }

    #[test]
    fn compaction_folds_the_wal_and_survives_reopen() {
        let dir = TempDir::new("compact");
        let expected = {
            let store =
                Store::open_with(dir.path(), opts_with(CrashSwitch::disabled(), 1)).unwrap();
            for rec in sample_records() {
                store.append(rec).unwrap();
            }
            store.fingerprint()
        };
        let store = Store::open(dir.path()).unwrap();
        assert_eq!(store.fingerprint(), expected);
        let rec = store.recovery();
        assert!(
            rec.snapshot_generation >= 1,
            "threshold 1 must have compacted: {rec:?}"
        );
        assert_eq!(
            rec.records_recovered, 0,
            "every record was folded into the snapshot"
        );
    }

    #[test]
    fn stale_wal_is_skipped_not_replayed() {
        // Probe the byte cost of the session up to (and including) the
        // snapshot rename, then crash exactly before the WAL reset.
        let records = sample_records();
        let expected = StoreState::from_records(records.clone()).fingerprint();
        let (before_compact, after_compact) = {
            let dir = TempDir::new("stale-probe");
            let store = Store::open(dir.path()).unwrap();
            for rec in records.clone() {
                store.append(rec).unwrap();
            }
            let before = store.bytes_written();
            store.compact().unwrap();
            (before, store.bytes_written())
        };
        let header_len = header_frame(1).len() as u64;
        // compact = snapshot frame + rename commit + reset commit + header.
        let budget = after_compact - header_len - 1;
        assert!(budget > before_compact);

        let dir = TempDir::new("stale");
        {
            let store = Store::open_with(
                dir.path(),
                opts_with(
                    CrashSwitch::armed(StoreCrash {
                        after_bytes: budget,
                    }),
                    u64::MAX,
                ),
            )
            .unwrap();
            for rec in records {
                store.append(rec).unwrap();
            }
            assert!(store.compact().is_err(), "crash before the WAL reset");
            assert!(store.is_dead());
            assert!(
                store
                    .append(Record::FaultTotals(FaultTotals::default()))
                    .is_err(),
                "dead store refuses writes"
            );
        }
        let store = Store::open(dir.path()).unwrap();
        assert!(store.recovery().wal_stale, "{:?}", store.recovery());
        assert_eq!(store.recovery().snapshot_generation, 1);
        assert_eq!(store.fingerprint(), expected);
    }

    #[test]
    fn wal_fault_corruption_is_crc_dropped_on_recovery() {
        let dir = TempDir::new("media");
        {
            let store = Store::open_with(
                dir.path(),
                StoreOptions {
                    faults: FaultInjector::from_plan(
                        FaultPlan::none(9).with_rate(FaultSite::StoreWal, 1.0),
                    ),
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            // In-session the writes look fine (silent corruption).
            for rec in sample_records() {
                store.append(rec).unwrap();
            }
        }
        let store = Store::open(dir.path()).unwrap();
        let rec = store.recovery();
        assert!(
            rec.crc_dropped + rec.torn_tails_dropped >= 1,
            "corruption must be detected: {rec:?}"
        );
        assert!(
            rec.records_recovered < 4,
            "corrupted records must not be trusted"
        );
    }

    #[test]
    fn trailing_garbage_after_the_log_is_dropped() {
        let dir = TempDir::new("garbage");
        let records = sample_records();
        let expected = StoreState::from_records(records.clone()).fingerprint();
        {
            let store = Store::open(dir.path()).unwrap();
            for rec in records {
                store.append(rec).unwrap();
            }
        }
        let wal_path = dir.path().join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[0xAB; 13]);
        std::fs::write(&wal_path, &bytes).unwrap();
        let store = Store::open(dir.path()).unwrap();
        assert_eq!(store.fingerprint(), expected);
        assert_eq!(store.recovery().records_recovered, 4);
    }

    #[test]
    fn corrupt_snapshot_is_dropped_but_wal_still_replays() {
        let dir = TempDir::new("badsnap");
        let records = sample_records();
        {
            let store =
                Store::open_with(dir.path(), opts_with(CrashSwitch::disabled(), u64::MAX)).unwrap();
            for rec in records.clone() {
                store.append(rec).unwrap();
            }
            store.compact().unwrap();
            // Two more records land in the fresh generation-1 WAL.
            store.append(Record::CacheEntry(sample_entry(77))).unwrap();
        }
        let snap_path = dir.path().join(SNAP_FILE);
        let mut snap = std::fs::read(&snap_path).unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0x40;
        std::fs::write(&snap_path, &snap).unwrap();
        let store = Store::open(dir.path()).unwrap();
        let rec = store.recovery();
        assert!(rec.snapshot_dropped);
        // Only the post-compaction record survives — the WAL is the sole
        // readable source, and recovered ⊆ committed still holds.
        assert_eq!(rec.records_recovered, 1);
        assert!(store.state().entries.contains_key(&77));
    }
}
