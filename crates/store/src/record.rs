//! The store's record vocabulary and its fold into a canonical state.
//!
//! A [`Record`] is the unit of durability: one committed fact about the
//! ASIP-SP session — a finished bitstream-cache entry, a quarantined
//! candidate signature, or the cumulative fault-ledger totals. Records
//! are *idempotent upserts*: applying the same record twice (or replaying
//! a stale WAL over a snapshot that already folded it in) leaves the
//! [`StoreState`] unchanged, which is what makes the snapshot/WAL
//! recovery protocol crash-consistent without any sequencing metadata.

use jitise_base::codec::{Decoder, Encoder};
use jitise_base::hash::hash_bytes;
use jitise_base::{Error, Result, SimTime};
use jitise_cad::{Bitstream, InstallTier, TimingReport};
use std::collections::BTreeMap;

/// A persisted bitstream-cache entry: everything a warm restart needs to
/// serve the candidate without re-running phases 2–3 (mirrors
/// `jitise_core::CachedCi`, which lives upstream of this crate).
#[derive(Debug, Clone, PartialEq)]
pub struct CiRecord {
    /// Candidate signature (the cache key).
    pub signature: u64,
    /// The partial bitstream.
    pub bitstream: Bitstream,
    /// Implemented timing.
    pub timing: TimingReport,
    /// Total generation time a cache hit on this entry saves.
    pub generation_time: SimTime,
    /// Which backend produced the bitstream. An `Overlay` record is
    /// journaled the moment the fast path installs; the `Full` record
    /// that follows a successful background upgrade upserts over it, so
    /// WAL replay order rehydrates exactly the tier the crash left
    /// installed.
    pub tier: InstallTier,
}

/// Cumulative fault-ledger totals across every session that wrote to this
/// store. Latest-wins on replay: each session appends one updated total,
/// so recovery keeps the newest committed value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Specialization sessions journaled.
    pub sessions: u64,
    /// Candidate implementation retries across all sessions.
    pub retries: u64,
    /// Candidates quarantined across all sessions.
    pub quarantined: u64,
    /// Simulated time lost to faults across all sessions (ns).
    pub fault_time_ns: u64,
}

/// One committed record in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A finalized bitstream-cache entry (upsert by signature).
    CacheEntry(CiRecord),
    /// A quarantined candidate signature (upsert by signature; the first
    /// recorded reason wins, matching `Quarantine::insert`).
    Quarantine {
        /// The candidate signature.
        signature: u64,
        /// Why it was quarantined.
        reason: String,
    },
    /// The cumulative fault-ledger totals (latest committed value wins).
    FaultTotals(FaultTotals),
    /// An eviction tombstone: the runtime's phase-storm policy dropped
    /// this cache entry, so a warm restart must rehydrate the
    /// *post-eviction* state, not resurrect a CI the workload stopped
    /// earning. A later `CacheEntry` for the same signature re-installs
    /// it (WAL replay order is the fold order), and evicting an absent
    /// signature is a no-op — the idempotent-upsert contract holds.
    Evict {
        /// The evicted candidate signature.
        signature: u64,
    },
}

const TAG_CACHE_ENTRY: u64 = 1;
const TAG_QUARANTINE: u64 = 2;
const TAG_FAULT_TOTALS: u64 = 3;
const TAG_EVICT: u64 = 4;

fn encode_ci(enc: &mut Encoder, e: &CiRecord) {
    enc.put_u64(e.signature);
    enc.put_bytes(&e.bitstream.bytes);
    enc.put_varu32(e.bitstream.frames);
    enc.put_u64(e.bitstream.crc as u64);
    enc.put_varu32(e.bitstream.partial as u32);
    enc.put_u64(e.timing.critical_path_ns.to_bits());
    enc.put_u64(e.timing.fmax_mhz.to_bits());
    enc.put_varu32(e.timing.critical_cells);
    enc.put_varu32(e.timing.meets_300mhz as u32);
    enc.put_u64(e.generation_time.as_nanos());
    enc.put_varu32(e.tier.encode());
}

fn decode_ci(dec: &mut Decoder<'_>) -> Result<CiRecord> {
    let signature = dec.get_u64()?;
    let bytes = dec.get_bytes()?.to_vec();
    let frames = dec.get_varu32()?;
    let crc = dec.get_u64()? as u32;
    let partial = dec.get_varu32()? != 0;
    let critical_path_ns = f64::from_bits(dec.get_u64()?);
    let fmax_mhz = f64::from_bits(dec.get_u64()?);
    let critical_cells = dec.get_varu32()?;
    let meets_300mhz = dec.get_varu32()? != 0;
    let generation_time = SimTime::from_nanos(dec.get_u64()?);
    let tier = InstallTier::decode(dec.get_varu32()?)?;
    Ok(CiRecord {
        signature,
        bitstream: Bitstream {
            bytes,
            frames,
            crc,
            partial,
        },
        timing: TimingReport {
            critical_path_ns,
            fmax_mhz,
            critical_cells,
            meets_300mhz,
        },
        generation_time,
        tier,
    })
}

fn encode_totals(enc: &mut Encoder, t: &FaultTotals) {
    enc.put_varu64(t.sessions);
    enc.put_varu64(t.retries);
    enc.put_varu64(t.quarantined);
    enc.put_u64(t.fault_time_ns);
}

fn decode_totals(dec: &mut Decoder<'_>) -> Result<FaultTotals> {
    Ok(FaultTotals {
        sessions: dec.get_varu64()?,
        retries: dec.get_varu64()?,
        quarantined: dec.get_varu64()?,
        fault_time_ns: dec.get_u64()?,
    })
}

impl Record {
    /// Serializes the record (the WAL frame payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Record::CacheEntry(e) => {
                enc.put_varu64(TAG_CACHE_ENTRY);
                encode_ci(&mut enc, e);
            }
            Record::Quarantine { signature, reason } => {
                enc.put_varu64(TAG_QUARANTINE);
                enc.put_u64(*signature);
                enc.put_str(reason);
            }
            Record::FaultTotals(t) => {
                enc.put_varu64(TAG_FAULT_TOTALS);
                encode_totals(&mut enc, t);
            }
            Record::Evict { signature } => {
                enc.put_varu64(TAG_EVICT);
                enc.put_u64(*signature);
            }
        }
        enc.finish()
    }

    /// Decodes one record produced by [`Self::encode`].
    pub fn decode(data: &[u8]) -> Result<Record> {
        let mut dec = Decoder::new(data);
        let rec = match dec.get_varu64()? {
            TAG_CACHE_ENTRY => Record::CacheEntry(decode_ci(&mut dec)?),
            TAG_QUARANTINE => Record::Quarantine {
                signature: dec.get_u64()?,
                reason: dec.get_str()?.to_string(),
            },
            TAG_FAULT_TOTALS => Record::FaultTotals(decode_totals(&mut dec)?),
            TAG_EVICT => Record::Evict {
                signature: dec.get_u64()?,
            },
            tag => return Err(Error::Codec(format!("unknown store record tag {tag}"))),
        };
        if !dec.is_at_end() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after store record",
                dec.remaining()
            )));
        }
        Ok(rec)
    }
}

/// The fold of a committed record sequence: the canonical materialized
/// state a recovery restores. `BTreeMap` keys make every traversal —
/// encoding, fingerprinting, hydration — deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreState {
    /// Cache entries by signature.
    pub entries: BTreeMap<u64, CiRecord>,
    /// Quarantined signatures with their first recorded reason.
    pub quarantine: BTreeMap<u64, String>,
    /// Latest committed fault-ledger totals.
    pub totals: FaultTotals,
}

impl StoreState {
    /// Applies one record (idempotent upsert semantics).
    pub fn apply(&mut self, rec: Record) {
        match rec {
            Record::CacheEntry(e) => {
                self.entries.insert(e.signature, e);
            }
            Record::Quarantine { signature, reason } => {
                self.quarantine.entry(signature).or_insert(reason);
            }
            Record::FaultTotals(t) => self.totals = t,
            Record::Evict { signature } => {
                self.entries.remove(&signature);
            }
        }
    }

    /// Folds a record sequence into a state (what recovery must equal).
    pub fn from_records<I: IntoIterator<Item = Record>>(records: I) -> StoreState {
        let mut state = StoreState::default();
        for rec in records {
            state.apply(rec);
        }
        state
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
            && self.quarantine.is_empty()
            && self.totals == FaultTotals::default()
    }

    /// Serializes the whole state (the snapshot body).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varu64(self.entries.len() as u64);
        for e in self.entries.values() {
            encode_ci(&mut enc, e);
        }
        enc.put_varu64(self.quarantine.len() as u64);
        for (sig, reason) in &self.quarantine {
            enc.put_u64(*sig);
            enc.put_str(reason);
        }
        encode_totals(&mut enc, &self.totals);
        enc.finish()
    }

    /// Restores a state image produced by [`Self::encode`]. Entries whose
    /// bitstream fails its CRC are dropped (returned as the second tuple
    /// element) rather than trusted — the snapshot frame CRC protects the
    /// framing, but an entry poisoned *before* it was written is only
    /// caught here.
    pub fn decode(data: &[u8]) -> Result<(StoreState, usize)> {
        let mut dec = Decoder::new(data);
        let mut state = StoreState::default();
        let mut dropped = 0usize;
        let n = dec.get_varu64()?;
        for _ in 0..n {
            let e = decode_ci(&mut dec)?;
            if e.bitstream.verify() {
                state.entries.insert(e.signature, e);
            } else {
                dropped += 1;
            }
        }
        let q = dec.get_varu64()?;
        for _ in 0..q {
            let sig = dec.get_u64()?;
            let reason = dec.get_str()?.to_string();
            state.quarantine.insert(sig, reason);
        }
        state.totals = decode_totals(&mut dec)?;
        if !dec.is_at_end() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after store snapshot",
                dec.remaining()
            )));
        }
        Ok((state, dropped))
    }

    /// Deterministic digest of the full state. Two states are identical
    /// iff their fingerprints match — the crash-sim harness compares the
    /// recovered state against the fold of the committed prefix with it.
    pub fn fingerprint(&self) -> String {
        format!(
            "entries={} quarantine={} totals={:?} digest={:016x}",
            self.entries.len(),
            self.quarantine.len(),
            self.totals,
            hash_bytes(&self.encode()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testfix::sample_entry;

    #[test]
    fn record_roundtrip() {
        let records = [
            Record::CacheEntry(sample_entry(7)),
            Record::Quarantine {
                signature: 9,
                reason: "cad: injected map fault".into(),
            },
            Record::FaultTotals(FaultTotals {
                sessions: 3,
                retries: 5,
                quarantined: 1,
                fault_time_ns: 123_456,
            }),
        ];
        for rec in &records {
            let bytes = rec.encode();
            assert_eq!(&Record::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn evict_roundtrip_and_fold_order() {
        let rec = Record::Evict { signature: 77 };
        assert_eq!(Record::decode(&rec.encode()).unwrap(), rec);

        // Install → evict removes the entry.
        let gone = StoreState::from_records(vec![
            Record::CacheEntry(sample_entry(77)),
            Record::Evict { signature: 77 },
        ]);
        assert!(gone.entries.is_empty(), "eviction must remove the entry");

        // Evict → re-install resurrects it (replay order is fold order).
        let back = StoreState::from_records(vec![
            Record::CacheEntry(sample_entry(77)),
            Record::Evict { signature: 77 },
            Record::CacheEntry(sample_entry(77)),
        ]);
        assert!(back.entries.contains_key(&77), "re-install must win");

        // Evicting an absent signature is a no-op.
        let noop = StoreState::from_records(vec![Record::Evict { signature: 5 }]);
        assert!(noop.entries.is_empty());
        assert_eq!(noop, StoreState::default());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut enc = Encoder::new();
        enc.put_varu64(99);
        assert!(Record::decode(&enc.finish()).is_err());
    }

    #[test]
    fn state_fold_is_idempotent_and_latest_wins() {
        let e = sample_entry(1);
        let records = vec![
            Record::CacheEntry(e.clone()),
            Record::Quarantine {
                signature: 2,
                reason: "first".into(),
            },
            Record::FaultTotals(FaultTotals {
                sessions: 1,
                ..FaultTotals::default()
            }),
            // Replays and updates:
            Record::CacheEntry(e.clone()),
            Record::Quarantine {
                signature: 2,
                reason: "second".into(),
            },
            Record::FaultTotals(FaultTotals {
                sessions: 2,
                ..FaultTotals::default()
            }),
        ];
        let state = StoreState::from_records(records);
        assert_eq!(state.entries.len(), 1);
        assert_eq!(state.quarantine[&2], "first", "first reason wins");
        assert_eq!(state.totals.sessions, 2, "latest totals win");
    }

    #[test]
    fn state_roundtrip_and_fingerprint() {
        let state = StoreState::from_records(vec![
            Record::CacheEntry(sample_entry(1)),
            Record::CacheEntry(sample_entry(2)),
            Record::Quarantine {
                signature: 3,
                reason: "x".into(),
            },
        ]);
        let (back, dropped) = StoreState::decode(&state.encode()).unwrap();
        assert_eq!(back, state);
        assert_eq!(dropped, 0);
        assert_eq!(back.fingerprint(), state.fingerprint());
        assert_ne!(StoreState::default().fingerprint(), state.fingerprint());
    }

    #[test]
    fn poisoned_entry_dropped_on_decode() {
        let mut poisoned = sample_entry(4);
        let len = poisoned.bitstream.bytes.len();
        poisoned.bitstream.bytes[len / 2] ^= 0x10;
        assert!(!poisoned.bitstream.verify());
        let state = StoreState::from_records(vec![
            Record::CacheEntry(sample_entry(1)),
            Record::CacheEntry(poisoned),
        ]);
        let (back, dropped) = StoreState::decode(&state.encode()).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(back.entries.len(), 1);
        assert!(back.entries.contains_key(&1));
    }
}
