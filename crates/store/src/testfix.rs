//! Shared test fixtures for the jitise-store unit tests.

use crate::record::CiRecord;
use jitise_base::codec::{crc32, Encoder};
use jitise_base::SimTime;
use jitise_cad::{Bitstream, InstallTier, TimingReport};

/// A minimal structurally valid bitstream (sync word, one frame, CRC
/// trailer) whose payload varies with `seed`, so `Bitstream::verify`
/// passes without running the CAD flow.
pub fn tiny_bitstream(seed: u64) -> Bitstream {
    let payload = {
        let mut enc = Encoder::new();
        enc.put_varu32(0); // column header
        enc.put_u64(seed);
        enc.finish()
    };
    let crc = crc32(&payload);
    let mut out = Encoder::new();
    out.put_u64(0xAA99_5566); // bitgen sync word
    out.put_varu32(1);
    out.put_varu32(payload.len() as u32);
    out.put_bytes(&payload);
    out.put_u64(crc as u64);
    Bitstream {
        bytes: out.finish(),
        frames: 1,
        crc,
        partial: true,
    }
}

/// A cache-entry record around [`tiny_bitstream`].
pub fn sample_entry(sig: u64) -> CiRecord {
    CiRecord {
        signature: sig,
        bitstream: tiny_bitstream(sig ^ 0xD1CE),
        timing: TimingReport {
            critical_path_ns: 2.5,
            fmax_mhz: 400.0,
            critical_cells: 3,
            meets_300mhz: true,
        },
        generation_time: SimTime::from_secs(220),
        tier: InstallTier::Full,
    }
}
