//! Crash-aware file plumbing: the append-only log file and the atomic
//! (write-temp → fsync → rename) snapshot protocol.
//!
//! Every byte headed for disk passes through a
//! [`jitise_faults::CrashSwitch`]: when the configured write budget runs
//! dry the write is cut at that exact byte boundary and the file marked
//! dead — precisely the state a killed process leaves behind. The
//! recovery scanner in `lib.rs` then has to cope with whatever prefix
//! made it to the platters, which is the property the crash-sim harness
//! sweeps.

use jitise_base::{Error, Result};
use jitise_faults::CrashSwitch;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes as much of `bytes` as the crash switch admits, syncing what was
/// written. Returns `Ok(())` only if *everything* was admitted; a short
/// write persists the admitted prefix and reports the crash.
fn write_crashable(file: &mut File, bytes: &[u8], crash: &CrashSwitch) -> Result<()> {
    let allowed = crash.admit(bytes.len());
    if allowed > 0 {
        file.write_all(&bytes[..allowed])
            .map_err(|e| Error::Store(format!("write failed: {e}")))?;
    }
    file.sync_data()
        .map_err(|e| Error::Store(format!("fsync failed: {e}")))?;
    if allowed < bytes.len() {
        return Err(Error::Store(format!(
            "simulated crash after {allowed} of {} bytes",
            bytes.len()
        )));
    }
    Ok(())
}

/// The append-only log file.
#[derive(Debug)]
pub(crate) struct LogFile {
    file: File,
    /// Committed length (bytes fully written and synced).
    len: u64,
    /// Once a write was cut short the file is dead: the real process
    /// would be gone, so no further bytes may land.
    dead: bool,
}

impl LogFile {
    /// Opens `path` for appending, truncating it to `committed` bytes
    /// first (recovery discards any torn/corrupt tail it scanned past).
    pub fn open_at(path: &Path, committed: u64) -> Result<LogFile> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Store(format!("open {}: {e}", path.display())))?;
        file.set_len(committed)
            .map_err(|e| Error::Store(format!("truncate {}: {e}", path.display())))?;
        Ok(LogFile {
            file,
            len: committed,
            dead: false,
        })
    }

    /// Appends `bytes` (one framed record), honoring the crash switch.
    pub fn append(&mut self, bytes: &[u8], crash: &CrashSwitch) -> Result<()> {
        if self.dead {
            return Err(Error::Store("store is dead after a crash".into()));
        }
        match write_crashable(&mut self.file, bytes, crash) {
            Ok(()) => {
                self.len += bytes.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    /// Committed bytes in the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True once a crash killed this file.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// Atomically replaces `dir/name` with `bytes`: write `name.tmp`, fsync,
/// rename over the target, fsync the directory. A crash at any byte
/// boundary leaves either the old file (tmp torn or complete but not yet
/// renamed) or the new one — never a half-written target.
pub(crate) fn write_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    crash: &CrashSwitch,
) -> Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    let mut file =
        File::create(&tmp).map_err(|e| Error::Store(format!("create {}: {e}", tmp.display())))?;
    write_crashable(&mut file, bytes, crash)?;
    file.sync_all()
        .map_err(|e| Error::Store(format!("fsync {}: {e}", tmp.display())))?;
    drop(file);
    // The rename is the commit point. Model it as a one-byte "write" so a
    // crash budget landing between the data and the rename leaves the old
    // file in place, exactly like a kill between write() and rename().
    if crash.admit(1) < 1 {
        return Err(Error::Store("simulated crash before rename".into()));
    }
    std::fs::rename(&tmp, &target)
        .map_err(|e| Error::Store(format!("rename {}: {e}", target.display())))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all(); // best-effort directory durability
    }
    Ok(())
}

/// Removes leftover `.tmp` files from a previous crashed compaction.
pub(crate) fn sweep_tmp(dir: &Path) {
    let Ok(read) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in read.flatten() {
        let path: PathBuf = entry.path();
        if path.extension().map(|e| e == "tmp").unwrap_or(false) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use jitise_faults::StoreCrash;

    #[test]
    fn log_append_accumulates_and_survives_reopen() {
        let dir = TempDir::new("wal-append");
        let path = dir.path().join("log");
        let mut log = LogFile::open_at(&path, 0).unwrap();
        log.append(b"hello", &CrashSwitch::disabled()).unwrap();
        log.append(b" world", &CrashSwitch::disabled()).unwrap();
        assert_eq!(log.len(), 11);
        drop(log);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        // Reopen at a shorter committed length: the tail is discarded.
        let log = LogFile::open_at(&path, 5).unwrap();
        assert_eq!(log.len(), 5);
        drop(log);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
    }

    #[test]
    fn crashed_append_persists_exact_prefix_and_kills_the_log() {
        let dir = TempDir::new("wal-crash");
        let path = dir.path().join("log");
        let mut log = LogFile::open_at(&path, 0).unwrap();
        let crash = CrashSwitch::armed(StoreCrash { after_bytes: 7 });
        log.append(b"0123", &crash).unwrap();
        let err = log.append(b"456789", &crash).unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        assert!(log.is_dead());
        assert!(log.append(b"x", &crash).is_err(), "dead log stays dead");
        drop(log);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"0123456",
            "exactly the 7-byte budget reached the file"
        );
    }

    #[test]
    fn write_atomic_is_all_or_nothing_at_every_crash_point() {
        let dir = TempDir::new("wal-atomic");
        std::fs::write(dir.path().join("snap"), b"OLD").unwrap();
        let payload = b"NEW-SNAPSHOT-BYTES";
        // +1 for the modeled rename commit byte.
        for budget in 0..=payload.len() as u64 + 1 {
            let crash = CrashSwitch::armed(StoreCrash {
                after_bytes: budget,
            });
            let result = write_atomic(dir.path(), "snap", payload, &crash);
            let on_disk = std::fs::read(dir.path().join("snap")).unwrap();
            if result.is_ok() {
                assert_eq!(on_disk, payload, "budget {budget}");
                // Restore the old file for the next sweep point.
                std::fs::write(dir.path().join("snap"), b"OLD").unwrap();
            } else {
                assert_eq!(on_disk, b"OLD", "budget {budget}: old file intact");
            }
        }
        sweep_tmp(dir.path());
        assert!(!dir.path().join("snap.tmp").exists());
    }
}
