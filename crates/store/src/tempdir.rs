//! A tiny scoped temporary-directory helper for tests, property tests,
//! and the crash-sim/chaos benches (kept here so no external `tempfile`
//! dependency is needed). Directories live under the OS temp dir — never
//! inside the repository — and are removed on drop, which is what the CI
//! tmpdir-hygiene check relies on.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under [`std::env::temp_dir`], deleted when
/// the value drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `jitise-store-<tag>-<pid>-<n>` under the OS temp dir,
    /// clearing any stale leftover of the same name first.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "jitise-store-{tag}-{pid}-{n}",
            pid = std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
