//! The `Strategy` trait and the basic combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of test-case values.
///
/// Unlike the real crate there is no value tree or shrinking: a strategy
/// draws one concrete value per case from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
