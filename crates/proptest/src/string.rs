//! String strategies from `"[class]{m,n}"`-style patterns.
//!
//! The real crate interprets a `&str` strategy as a full regex. The
//! workspace only uses character-class-with-repetition patterns, so this
//! parser supports exactly that shape — `[chars]{min,max}`, `[chars]{n}`,
//! `[chars]*`, `[chars]+` — plus plain literals (generated verbatim).
//! Unsupported syntax panics loudly rather than silently mis-generating.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

fn parse_class(pattern: &str) -> Option<(Vec<char>, &str)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = (&rest[..close], &rest[close + 1..]);
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        // `a-z` range (a trailing `-` is a literal).
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i], cs[i + 2]);
            assert!(lo <= hi, "bad range {lo}-{hi} in string pattern");
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    Some((chars, tail))
}

fn parse_counts(tail: &str) -> (usize, usize) {
    if tail == "*" {
        return (0, 8);
    }
    if tail == "+" {
        return (1, 8);
    }
    let inner = tail
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported string pattern tail {tail:?}"));
    match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("pattern min count"),
            hi.trim().parse().expect("pattern max count"),
        ),
        None => {
            let n = inner.trim().parse().expect("pattern count");
            (n, n)
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class(self) {
            Some((chars, tail)) => {
                assert!(!chars.is_empty(), "empty character class");
                let (lo, hi) = parse_counts(tail);
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            // No class syntax: treat the pattern as a literal.
            None => {
                assert!(
                    !self.contains(['[', '{', '*', '+', '?', '|', '(', ')']),
                    "unsupported regex pattern {self:?} (only [class]{{m,n}} or literals)"
                );
                (*self).to_string()
            }
        }
    }
}
