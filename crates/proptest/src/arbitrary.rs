//! `any::<T>()` — type-driven default strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(64) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}
