//! `prop::collection` — container strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
