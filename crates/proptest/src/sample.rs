//! `prop::sample` — choosing among concrete values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

/// Uniformly selects one of the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select(options)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}
