//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides the subset of the `proptest` API the workspace's test suites
//! use: the [`proptest!`] macro, the `prop_assert*` family, numeric-range
//! and tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::sample::select`, simple `"[class]{m,n}"` string strategies, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case index and deterministic seed instead of a minimized input),
//! and `prop_assume!` skips the case rather than resampling it. Test
//! semantics are otherwise the same: each property runs against many
//! pseudorandom inputs drawn from its strategies, deterministically seeded
//! per test name so failures reproduce.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `proptest::prelude` — everything a property-test file imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(&config, stringify!($name));
                for case in 0..config.cases {
                    let rng = runner.rng();
                    let ($($p,)+) =
                        ( $( $crate::strategy::Strategy::generate(&($s), rng), )+ );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, config.cases, runner.seed(), e
                        );
                    }
                    runner.next_case();
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} == {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold (the real
/// crate resamples; skipping preserves soundness without a resample loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u8..4, -2i32..3), 2..9),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for &(x, y) in &v {
                prop_assert!(x < 4);
                prop_assert!((-2..3).contains(&y));
            }
            let _ = flag;
        }

        #[test]
        fn string_pattern_respects_class_and_len(s in "[a-c0-2 _-]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| "abc012 _-".contains(c)));
        }

        #[test]
        fn select_picks_members(x in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&x));
        }

        #[test]
        fn prop_map_applies(n in (1u64..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(n % 3, 0);
            prop_assert!(n < 30 && n > 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::with_cases(5);
        let draw = |name: &str| {
            let mut r = crate::test_runner::TestRunner::new(&cfg, name);
            (0u64..1_000_000).generate(r.rng())
        };
        assert_eq!(draw("t1"), draw("t1"));
        assert_ne!(draw("t1"), draw("t2"));
    }
}
