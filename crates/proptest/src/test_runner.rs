//! Case runner: configuration, deterministic RNG, and failure reporting.

use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudorandom cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping is fine for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test driver: owns the RNG and the case counter.
pub struct TestRunner {
    rng: TestRng,
    seed: u64,
    case: u32,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// A runner seeded deterministically from the test name (stable across
    /// runs, different across tests).
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        let seed = fnv1a(name.as_bytes());
        TestRunner {
            rng: TestRng::new(seed),
            seed,
            case: 0,
        }
    }

    /// The RNG for drawing the current case's inputs.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// The deterministic base seed (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed ^ self.case as u64
    }

    /// Advances to the next case.
    pub fn next_case(&mut self) {
        self.case += 1;
    }
}
