//! Property tests for the multi-tenant fairness and overload contracts
//! (DESIGN.md §16):
//!
//! 1. the deficit-round-robin pool scheduler is **starvation-free**
//!    under arbitrary tenant mixes: every job is dispatched, and no job
//!    waits more scheduling rounds than `ceil(charge/quantum)`;
//! 2. a full serve run under random overload and random fault plans
//!    still hands **every** tenant — admitted, deferred, shed, or
//!    degraded — the exact software-only reference answers. (The
//!    engine's own debug assertion re-checks the starvation bound on
//!    the end-to-end schedule in the same pass.)

use jitise_base::SimTime;
use jitise_cad::sched::{drr_dispatch, round_bound, DrrConfig, PoolJob};
use jitise_core::EvalContext;
use jitise_faults::{FaultInjector, FaultPlan};
use jitise_serve::{fleet, run_serve, workload_module, ServeConfig};
use jitise_vm::{Interpreter, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn drr_is_starvation_free_under_random_mixes(
        lanes in 1usize..5,
        quantum_us in 1u64..2_000,
        raw in prop::collection::vec((0u64..6, 1u64..50_000, 0u64..10_000), 1..40),
    ) {
        let jobs: Vec<PoolJob> = raw
            .iter()
            .map(|&(tenant, charge_us, ready_us)| PoolJob {
                tenant,
                charge: SimTime::from_micros(charge_us),
                ready_at: SimTime::from_micros(ready_us),
            })
            .collect();
        let config = DrrConfig {
            lanes,
            quantum: SimTime::from_micros(quantum_us),
        };
        let out = drr_dispatch(&jobs, &config);

        // Every job completes — the scheduler never drops or wedges.
        prop_assert_eq!(out.dispatched.len(), jobs.len());

        // Starvation freedom: a job's scheduling delay is bounded by how
        // many quantum accruals its own charge needs, regardless of what
        // the other tenants queued.
        for d in &out.dispatched {
            let bound = round_bound(jobs[d.job].charge, config.quantum);
            prop_assert!(
                d.rounds_waited < bound,
                "job {} (tenant {}) waited {} rounds, bound {}",
                d.job, d.tenant, d.rounds_waited, bound
            );
            prop_assert!(d.finish > d.start, "dispatch must consume its charge");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn overloaded_fleet_is_correct_under_random_faults(
        seed in any::<u64>(),
        max_active in 1usize..4,
        defer_capacity in 0usize..3,
        fault_rate in 0.0f64..0.12,
        fault_seed in any::<u64>(),
    ) {
        let config = ServeConfig {
            seed,
            tenants: 8,
            cad_workers: 2,
            max_active,
            defer_capacity,
            arrival_spacing_us: 80,
            service_model_us: 900,
            runs_per_tenant: 3,
            distinct_workloads: 3,
            hot_iters: 40,
            faults: FaultInjector::from_plan(FaultPlan::uniform(fault_rate, fault_seed)),
            ..ServeConfig::default()
        };
        let out = run_serve(&EvalContext::new(), &config).unwrap();

        // Typed outcomes cover the whole fleet — nothing lost, nothing
        // panicked.
        prop_assert_eq!(out.tenants.len(), config.tenants as usize);
        prop_assert_eq!(
            out.admitted + out.deferred + out.shed,
            config.tenants
        );

        // Every tenant's answers equal the software-only reference, no
        // matter how admission or the fault plan treated it.
        let specs = fleet(
            config.seed,
            config.tenants,
            config.arrival_spacing_us,
            config.service_model_us,
            config.distinct_workloads,
            config.kernels,
        );
        for t in &out.tenants {
            let spec = &specs[t.id as usize];
            let m = workload_module(
                spec,
                config.kernels,
                config.hot_iters,
                config.near_duplicate,
            );
            let args = [Value::I(spec.sel), Value::I(2)];
            let want = Interpreter::new(&m).run("main", &args).unwrap().ret;
            for (run, got) in t.results.iter().enumerate() {
                prop_assert_eq!(
                    got, &want,
                    "tenant {} ({:?}, degraded {:?}) run {} diverged",
                    t.id, t.admission, t.degraded, run
                );
            }
        }
    }
}
