//! Integration tests for the multi-tenant serve runtime (DESIGN.md §16):
//!
//! 1. a fixed-seed fleet run is **bit-identical across CAD pool widths**
//!    (only the lane-dependent timing post-pass may differ);
//! 2. **every** tenant — admitted, deferred, shed, or degraded — computes
//!    exactly the software-only reference answers;
//! 3. per-tenant deadline budgets degrade only the exhausted tenant;
//! 4. a **crash storm** — store death mid-serve plus burst CAD faults —
//!    recovers to exactly the committed prefix on warm restart, with no
//!    cross-tenant corruption, and the service keeps serving.

use jitise_base::SimTime;
use jitise_core::DegradedReason;
use jitise_core::EvalContext;
use jitise_faults::{Bursts, CrashSwitch, FaultInjector, FaultPlan, StoreCrash};
use jitise_serve::{fleet, run_serve, workload_module, Admission, ServeConfig, ServeOutcome};
use jitise_store::{Store, StoreOptions, TempDir};
use jitise_vm::{Interpreter, Value};
use std::sync::Arc;

/// A small overloaded fleet: four slots and a two-deep defer queue under
/// ~100µs arrivals with ~600µs residency. Enough tenants execute that the
/// shared cache gets hits (the (workload, selector) combo cycle is
/// `distinct_workloads × kernels = 6`), while the tail still defers and
/// sheds.
fn small_config(seed: u64, cad_workers: usize, store: Option<Arc<Store>>) -> ServeConfig {
    ServeConfig {
        seed,
        tenants: 16,
        cad_workers,
        max_active: 4,
        defer_capacity: 2,
        arrival_spacing_us: 100,
        service_model_us: 600,
        runs_per_tenant: 3,
        distinct_workloads: 3,
        hot_iters: 60,
        store,
        ..ServeConfig::default()
    }
}

/// Software-only reference answers for every tenant in `config`'s fleet.
fn software_reference(config: &ServeConfig) -> Vec<Vec<Option<Value>>> {
    let specs = fleet(
        config.seed,
        config.tenants,
        config.arrival_spacing_us,
        config.service_model_us,
        config.distinct_workloads,
        config.kernels,
    );
    specs
        .iter()
        .map(|spec| {
            let m = workload_module(
                spec,
                config.kernels,
                config.hot_iters,
                config.near_duplicate,
            );
            let args = [Value::I(spec.sel), Value::I(2)];
            (0..config.runs_per_tenant)
                .map(|_| Interpreter::new(&m).run("main", &args).unwrap().ret)
                .collect()
        })
        .collect()
}

fn assert_all_results_correct(out: &ServeOutcome, config: &ServeConfig) {
    let want = software_reference(config);
    for t in &out.tenants {
        assert_eq!(
            t.results, want[t.id as usize],
            "tenant {} ({:?}, degraded {:?}) changed a workload answer",
            t.id, t.admission, t.degraded
        );
    }
}

#[test]
fn fixed_seed_run_is_bit_identical_across_pool_widths() {
    // A fresh EvalContext per run: the netlist cache inside it is shared
    // infrastructure, and carrying a warm one into the next run would
    // (legitimately) change C2V charges.
    let outs: Vec<ServeOutcome> = [1usize, 2, 8]
        .iter()
        .map(|&w| run_serve(&EvalContext::new(), &small_config(2011, w, None)).unwrap())
        .collect();

    // The scenario must actually exercise all three admission outcomes
    // and the shared cache.
    assert!(outs[0].admitted >= 1, "no tenant admitted at arrival");
    assert!(outs[0].deferred >= 1, "defer queue never used");
    assert!(outs[0].shed >= 1, "load shedding never triggered");
    assert!(outs[0].cache_hits >= 1, "shared cache never hit");

    let fp = outs[0].fingerprint();
    for out in &outs[1..] {
        assert_eq!(out.fingerprint(), fp, "pool width leaked into outcome");
    }
    // The timing post-pass is where pool width is allowed to show.
    assert_eq!(outs[0].timing.cad_workers, 1);
    assert_eq!(outs[2].timing.cad_workers, 8);
    assert_eq!(outs[0].timing.pool_jobs, outs[2].timing.pool_jobs);
    assert!(
        outs[2].timing.makespan <= outs[0].timing.makespan,
        "more lanes must not lengthen the pool schedule"
    );
}

#[test]
fn every_tenant_computes_software_reference_answers() {
    let config = small_config(2011, 2, None);
    let out = run_serve(&EvalContext::new(), &config).unwrap();
    assert!(out.shed >= 1, "shed path not exercised");
    assert!(out.deferred >= 1, "deferred path not exercised");
    assert_all_results_correct(&out, &config);

    // Shed tenants never touch the shared pipeline.
    for t in &out.tenants {
        if t.admission == Admission::Shed {
            assert_eq!(t.cache_hits, 0);
            assert_eq!(t.fresh, 0);
            assert_eq!(t.cpu_time, SimTime::ZERO);
            assert_eq!(
                t.speedup_bits,
                1f64.to_bits(),
                "shed must run software-only"
            );
        }
    }
}

#[test]
fn deadline_exhaustion_degrades_only_that_tenant_tier() {
    // A 1µs CAD budget: every tenant that reaches specialization blows
    // it and must fall back to software-only — correctly.
    let config = ServeConfig {
        deadline: SimTime::from_micros(1),
        ..small_config(2011, 2, None)
    };
    let out = run_serve(&EvalContext::new(), &config).unwrap();
    let exceeded = out
        .tenants
        .iter()
        .filter(|t| t.degraded == Some(DegradedReason::DeadlineExceeded))
        .count();
    assert!(exceeded >= 1, "deadline path not exercised");
    let mut rescued = 0usize;
    for t in &out.tenants {
        if t.admission.admitted_at_us().is_some() {
            match &t.degraded {
                Some(DegradedReason::DeadlineExceeded) => {
                    assert_eq!(
                        t.speedup_bits,
                        1f64.to_bits(),
                        "degraded must be software-only"
                    );
                }
                None => {
                    // The only way to meet a 1µs budget is to do no CAD
                    // work at all: an earlier tenant with the same
                    // workload already committed the bitstreams, and the
                    // shared cache rescued this one from the deadline.
                    assert_eq!(t.fresh, 0, "tenant {} did CAD work under 1µs?", t.id);
                    assert!(t.cache_hits >= 1, "tenant {} met 1µs with no hits", t.id);
                    rescued += 1;
                }
                other => panic!("unexpected degradation {other:?} for tenant {}", t.id),
            }
        }
    }
    assert!(rescued >= 1, "shared cache never rescued a later tenant");
    assert_all_results_correct(&out, &config);

    // The degradation is still lane-invariant (fresh context: a warm
    // netlist cache would legitimately change C2V charges).
    let out8 = run_serve(
        &EvalContext::new(),
        &ServeConfig {
            cad_workers: 8,
            ..config.clone()
        },
    )
    .unwrap();
    assert_eq!(out.fingerprint(), out8.fingerprint());
}

/// Acceptance criterion for two-tier installation at fleet scale: with
/// the overlay enabled, the whole lane-invariant outcome — overlay
/// installs, upgrades, answers — is bit-identical across pool widths.
#[test]
fn overlay_fleet_is_bit_identical_across_pool_widths() {
    let config_for = |w: usize| {
        let ctx = EvalContext::new();
        let overlay = Some(Arc::new(jitise_cad::OverlayLibrary::from_db(&ctx.db)));
        (
            ctx,
            ServeConfig {
                overlay,
                ..small_config(2011, w, None)
            },
        )
    };
    let outs: Vec<ServeOutcome> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let (ctx, config) = config_for(w);
            run_serve(&ctx, &config).unwrap()
        })
        .collect();
    assert!(
        outs[0].overlay_installs >= 1,
        "the two-tier path must engage"
    );
    assert!(outs[0].upgrades >= 1, "background upgrades must land");
    let fp = outs[0].fingerprint();
    for out in &outs[1..] {
        assert_eq!(out.fingerprint(), fp, "pool width leaked into outcome");
    }
    let (_, config) = config_for(2);
    assert_all_results_correct(&outs[1], &config);
}

/// The seeded cache-thrash scenario (ROADMAP item 5): near-duplicate
/// kernels give every workload distinct same-shaped signatures, and a
/// tiny shared cache forces them to fight over a few slots. Answers stay
/// correct and the fleet stays lane-invariant; the thrash shows up as
/// capacity evictions and lost hits.
#[test]
fn near_duplicate_thrash_fleet_stays_correct_and_deterministic() {
    let thrash_config = |w: usize| ServeConfig {
        near_duplicate: true,
        cache_capacity: 2,
        ..small_config(2011, w, None)
    };
    let out = run_serve(&EvalContext::new(), &thrash_config(2)).unwrap();
    assert!(
        out.evictions >= 1,
        "a two-slot cache under thrash must evict"
    );
    assert_all_results_correct(&out, &thrash_config(2));

    let out8 = run_serve(&EvalContext::new(), &thrash_config(8)).unwrap();
    assert_eq!(
        out.fingerprint(),
        out8.fingerprint(),
        "thrash must stay lane-invariant"
    );

    // The calm control — same fleet, ample cache, no near-duplicates —
    // keeps more of its hits.
    let calm = run_serve(&EvalContext::new(), &small_config(2011, 2, None)).unwrap();
    assert!(calm.evictions == 0, "the control must not thrash");
}

/// The full crash storm: burst CAD faults (keyed per tenant epoch) while
/// the store dies mid-serve. Execution must not notice the store's
/// death, non-faulted tenants must be byte-equal to a fault-free run,
/// and a warm restart must recover exactly the committed prefix.
#[test]
fn crash_storm_mid_serve_recovers_committed_prefix() {
    let storm = FaultInjector::from_plan(FaultPlan::uniform(0.08, 77).with_bursts(Bursts {
        period: 5,
        width: 2,
        boost: 6.0,
        calm: 0.2,
    }));
    let calm_config = small_config(4242, 2, None);
    let calm = run_serve(&EvalContext::new(), &calm_config).unwrap();

    // Dry pass under the storm to size the journal.
    let dry_dir = TempDir::new("serve-dry");
    let dry_store = Arc::new(Store::open(dry_dir.path()).unwrap());
    let dry_config = ServeConfig {
        faults: storm.clone(),
        ..small_config(4242, 2, Some(Arc::clone(&dry_store)))
    };
    let dry = run_serve(&EvalContext::new(), &dry_config).unwrap();
    assert!(dry.degraded >= 1, "storm must degrade at least one tenant");
    assert!(
        dry.degraded < dry.admitted + dry.deferred,
        "storm must leave some tenants healthy"
    );
    let total_bytes = dry_store.bytes_written();
    assert!(total_bytes > 0, "storm run must journal commits");
    drop(dry_store);

    // Crash run: the store dies at 60% of the byte stream, mid-fleet.
    let crash_dir = TempDir::new("serve-crash");
    let store = Arc::new(
        Store::open_with(
            crash_dir.path(),
            StoreOptions {
                crash: CrashSwitch::armed(StoreCrash {
                    after_bytes: total_bytes * 6 / 10,
                }),
                ..StoreOptions::default()
            },
        )
        .unwrap(),
    );
    let config = ServeConfig {
        faults: storm,
        ..small_config(4242, 2, Some(Arc::clone(&store)))
    };
    let out = run_serve(&EvalContext::new(), &config).unwrap();

    // 1. No tenant's answers change — not from CAD faults, not from the
    //    store's death.
    assert_all_results_correct(&out, &config);

    // 2. Fault isolation: admission is fault-blind, answers are
    //    fault-blind, and a tenant the storm left fully alone — no
    //    degradation, no failed candidates, no retries — is byte-equal
    //    to the fault-free run. (A non-degraded tenant can still lose
    //    individual candidates to the storm, which legitimately shrinks
    //    its speedup — but never changes its answers.)
    let mut untouched = 0usize;
    for (t, c) in out.tenants.iter().zip(&calm.tenants) {
        assert_eq!(t.id, c.id);
        assert_eq!(t.admission, c.admission, "faults must not alter admission");
        assert_eq!(t.results, c.results, "cross-tenant corruption at {}", t.id);
        if t.degraded.is_none() && t.failed == 0 && t.retries == 0 && t.fresh == c.fresh {
            assert_eq!(t.speedup_bits, c.speedup_bits, "tenant {} perturbed", t.id);
            untouched += 1;
        }
    }
    assert!(untouched >= 1, "storm must leave some tenant fully alone");

    // 3. The in-memory fold is the committed ground truth; recovery must
    //    restore exactly it.
    let committed = store.state().fingerprint();
    drop(store);
    let survivor = Arc::new(Store::open(crash_dir.path()).unwrap());
    assert_eq!(
        survivor.state().fingerprint(),
        committed,
        "recovered store must equal the committed prefix"
    );

    // 4. The service keeps serving: a warm restart from the survivor
    //    runs a fresh fault-free fleet correctly and reuses the
    //    journaled work.
    let again_config = small_config(4242, 2, Some(survivor));
    let again = run_serve(&EvalContext::new(), &again_config).unwrap();
    assert_all_results_correct(&again, &again_config);
    // The journal hydrates both the cache (hits) and the quarantine
    // (skips), so the robust claim is about *work*: a warm fleet never
    // re-generates more bitstreams than the cold fault-free one.
    assert!(
        again.fresh <= calm.fresh && again.cache_hits >= 1,
        "warm restart must not lose committed cache value \
         (fresh {} vs cold {}, hits {})",
        again.fresh,
        calm.fresh,
        again.cache_hits
    );
}
