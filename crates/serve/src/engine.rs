//! The multi-tenant serve engine.
//!
//! [`run_serve`] admits a seeded tenant fleet against **shared**
//! infrastructure — one content-addressed [`BitstreamCache`], one
//! [`Quarantine`], one optional [`Store`] WAL, one netlist cache, one
//! bounded CAD pool — and drives every tenant to completion with typed
//! degradation instead of failure. Three layers (DESIGN.md §16):
//!
//! 1. **Admission** ([`crate::tenant`]) — lane-invariant event
//!    simulation over modeled service times; decides admit / defer /
//!    shed per tenant.
//! 2. **Execution** — tenants are processed *serially in admission
//!    order* against the shared caches (so a later tenant naturally
//!    hits entries an earlier one committed), with intra-tenant CAD
//!    parallelism via `parallel_map_indexed`. Every observable here is
//!    bit-identical across `cad_workers` — the PR 3/7 determinism
//!    pattern. Per-tenant fault streams are keyed by (tenant id,
//!    epoch), so a tenant's schedule is invariant under admission order
//!    and fleet size. Worker faults, specialization errors, and
//!    deadline exhaustion degrade *that tenant* to software-only
//!    execution ([`DegradedReason`]) and leave every other tenant
//!    untouched.
//! 3. **Timing** — a deficit-round-robin post-pass
//!    ([`jitise_cad::sched`]) simulates the shared pool's contention
//!    and yields the fleet's time-to-first-speedup distribution, queue
//!    depth, and makespan. This is the only lane-*dependent* data, and
//!    [`ServeOutcome::fingerprint`] excludes it.

use crate::tenant::{admission_schedule, fleet, Admission, TenantSpec};
use jitise_base::hash::SigHasher;
use jitise_base::par::parallel_map_indexed;
use jitise_base::{Result, SimTime};
use jitise_cad::sched::{drr_dispatch, round_bound, DrrConfig, PoolJob};
use jitise_cad::OverlayLibrary;
use jitise_core::{
    BitstreamCache, DegradedReason, EvalContext, SpecializeConfig, SpecializeReport,
    SpecializeSession, WorkloadSession,
};
use jitise_faults::{FaultInjector, FaultSite, Quarantine, RetryPolicy};
use jitise_ir::Module;
use jitise_ise::{SearchConfig, SearchMemo};
use jitise_store::{Record, Store};
use jitise_telemetry::{names, HistogramSnapshot, Telemetry, Value as TelValue};
use jitise_vm::{Value, VmTier};
use jitise_woolcano::Woolcano;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Knobs for one serve run. Everything observable is a pure function of
/// this config (and the store's recovered state, when present).
#[derive(Clone)]
pub struct ServeConfig {
    /// Fleet seed: arrivals, service times, and workload seeds derive
    /// from it.
    pub seed: u64,
    /// Fleet size.
    pub tenants: u32,
    /// Shared CAD pool width. Changes only the timing post-pass and
    /// intra-tenant wall clock — never the fingerprint.
    pub cad_workers: usize,
    /// Concurrent active-session slots (admission control).
    pub max_active: usize,
    /// Bounded defer-queue capacity; arrivals beyond it are shed.
    pub defer_capacity: usize,
    /// Mean inter-arrival gap of the open-loop schedule, microseconds.
    pub arrival_spacing_us: u64,
    /// Modeled active-session residency, microseconds (lane-invariant).
    pub service_model_us: u64,
    /// Workload runs per tenant (first is the profiling run; minimum 2).
    pub runs_per_tenant: u32,
    /// Per-tenant CAD budget: a specialization whose `cpu_time` exceeds
    /// it degrades the tenant to [`DegradedReason::DeadlineExceeded`].
    pub deadline: SimTime,
    /// Distinct workload seeds the fleet cycles over (cache-hit
    /// population: more tenants per seed → higher shared-cache hit
    /// rate).
    pub distinct_workloads: u32,
    /// Kernels per workload module (tenants also cycle the selector).
    pub kernels: u32,
    /// Kernel loop trip count (workload size knob).
    pub hot_iters: i32,
    /// Build every workload with near-duplicate kernels: structurally
    /// distinct blocks (distinct candidate signatures) with near-equal
    /// hotness. Combined with a small [`Self::cache_capacity`] this is
    /// the seeded cache-thrash scenario — many same-shaped signatures
    /// competing for few shared slots (ROADMAP item 5).
    pub near_duplicate: bool,
    /// Shared-cache capacity in entries; beyond it the oldest fresh
    /// entry is evicted (and journaled as a [`Record::Evict`]
    /// tombstone).
    pub cache_capacity: usize,
    /// DRR quantum for the timing post-pass.
    pub quantum: SimTime,
    /// Fault handle; scoped per tenant via `for_tenant(id).at_epoch(id)`.
    pub faults: FaultInjector,
    /// Retry policy shared by every tenant's pipeline.
    pub retry: RetryPolicy,
    /// Optional crash-consistent store. Hydrates the shared cache and
    /// quarantine at start (warm restart) and journals every commit and
    /// eviction during the run.
    pub store: Option<Arc<Store>>,
    /// Workload execution tier.
    pub vm_tier: VmTier,
    /// Optional overlay cell library: every tenant's specialization uses
    /// two-tier installation (millisecond overlay install + full-CAD
    /// background upgrade, DESIGN.md §17). `None` keeps the fleet
    /// byte-identical to the full-only pipeline.
    pub overlay: Option<Arc<OverlayLibrary>>,
    /// Observability sink.
    pub telemetry: Telemetry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 2011,
            tenants: 48,
            cad_workers: 1,
            max_active: 8,
            defer_capacity: 6,
            arrival_spacing_us: 400,
            service_model_us: 2_500,
            runs_per_tenant: 4,
            deadline: SimTime::from_hours(2),
            distinct_workloads: 6,
            kernels: 2,
            hot_iters: 40,
            cache_capacity: 64,
            quantum: SimTime::from_secs(60),
            near_duplicate: false,
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            store: None,
            vm_tier: VmTier::Interp,
            overlay: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One tenant's full outcome. Everything here is lane-invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant id.
    pub id: u64,
    /// Admission decision.
    pub admission: Admission,
    /// Why this tenant fell back to software-only execution, if it did.
    /// Shed tenants are software-only by decision, not degradation.
    pub degraded: Option<DegradedReason>,
    /// Shared-cache hits during this tenant's specialization.
    pub cache_hits: u32,
    /// Freshly generated (non-hit) candidates.
    pub fresh: u32,
    /// Candidates that failed or were quarantine-skipped.
    pub failed: u32,
    /// Pipeline retries burned.
    pub retries: u64,
    /// Candidates that went live on the overlay fast path (two-tier
    /// installation; zero without [`ServeConfig::overlay`]).
    pub overlay_installs: u32,
    /// Overlay installs whose background full-CAD upgrade landed.
    pub upgrades: u32,
    /// Schedule-invariant total tool time of this tenant's
    /// specialization ([`SimTime::ZERO`] when it never specialized).
    pub cpu_time: SimTime,
    /// Observed workload speedup, as bits (1.0 for software-only).
    pub speedup_bits: u64,
    /// Return value of every workload run, in order. Degraded, shed, or
    /// healthy: these must equal a software-only run's answers.
    pub results: Vec<Option<Value>>,
}

/// Lane-*dependent* fleet timing from the DRR post-pass. Excluded from
/// [`ServeOutcome::fingerprint`] — the one place pool width shows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTiming {
    /// Pool width the schedule was simulated over.
    pub cad_workers: usize,
    /// Latest CAD completion across the fleet.
    pub makespan: SimTime,
    /// Median time-to-first-speedup across sped-up tenants, µs.
    pub ttfs_p50_us: u64,
    /// 99th-percentile time-to-first-speedup, µs.
    pub ttfs_p99_us: u64,
    /// Peak ready-but-undispatched CAD backlog.
    pub max_queue_depth: usize,
    /// Worst per-job scheduling delay observed, in DRR visits. Always
    /// under the starvation bound `ceil(charge/quantum)`.
    pub max_rounds_waited: u32,
    /// CAD jobs simulated.
    pub pool_jobs: usize,
}

/// Outcome of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-tenant outcomes, ordered by tenant id.
    pub tenants: Vec<TenantOutcome>,
    /// Tenants granted a slot at arrival.
    pub admitted: u32,
    /// Tenants admitted after a deferral.
    pub deferred: u32,
    /// Tenants shed at arrival.
    pub shed: u32,
    /// Admitted tenants that degraded to software-only execution.
    pub degraded: u32,
    /// Shared-cache hits across the fleet.
    pub cache_hits: u64,
    /// Freshly generated candidates across the fleet.
    pub fresh: u64,
    /// Overlay fast-path installs across the fleet.
    pub overlay_installs: u64,
    /// Completed full-CAD background upgrades across the fleet.
    pub upgrades: u64,
    /// Shared-cache evictions (capacity policy), each journaled.
    pub evictions: u64,
    /// The store's committed-state fingerprint after the run (`None`
    /// without a store).
    pub store_fingerprint: Option<String>,
    /// Lane-dependent timing; excluded from the fingerprint.
    pub timing: FleetTiming,
}

impl ServeOutcome {
    /// Deterministic digest of every lane-invariant observable: a
    /// fixed-seed run must produce the same fingerprint at any
    /// `cad_workers` (the PR 3/7 pattern — only [`Self::timing`] may
    /// differ, and it is excluded).
    pub fn fingerprint(&self) -> String {
        let mut h = SigHasher::new();
        for t in &self.tenants {
            h.write_u64(t.id);
            h.write_str(&format!(
                "{:?}|{:?}|{}|{}|{}|{}|{}|{}|{}|{:016x}|{:?}",
                t.admission,
                t.degraded,
                t.cache_hits,
                t.fresh,
                t.failed,
                t.retries,
                t.overlay_installs,
                t.upgrades,
                t.cpu_time.as_nanos(),
                t.speedup_bits,
                t.results,
            ));
        }
        format!(
            "tenants={} admitted={} deferred={} shed={} degraded={} hits={} fresh={} \
             ovl={} upg={} evict={} store={} digest={:016x}",
            self.tenants.len(),
            self.admitted,
            self.deferred,
            self.shed,
            self.degraded,
            self.cache_hits,
            self.fresh,
            self.overlay_installs,
            self.upgrades,
            self.evictions,
            self.store_fingerprint.as_deref().unwrap_or("none"),
            h.finish(),
        )
    }
}

/// Builds the workload module for one tenant spec (memoized inside
/// [`run_serve`] per workload seed — same seed, same module, same
/// candidate signatures, shared cache entries). Public so tests and
/// benches can construct the byte-identical software-only reference.
pub fn workload_module(
    spec: &TenantSpec,
    kernels: u32,
    hot_iters: i32,
    near_duplicate: bool,
) -> Module {
    jitise_apps::build_phased(&jitise_apps::PhasedSpec {
        seed: spec.workload_seed,
        kernels: kernels.max(1),
        kernel_blocks: 1,
        block_ins: 48,
        seg_len: 6,
        hot_iters: hot_iters.max(1),
        near_duplicate,
    })
}

/// Tracks shared-cache residency in commit order for the capacity
/// eviction policy.
struct CacheLedger {
    order: VecDeque<u64>,
}

impl CacheLedger {
    fn new() -> CacheLedger {
        CacheLedger {
            order: VecDeque::new(),
        }
    }

    fn note_fresh(&mut self, signature: u64) {
        if !self.order.contains(&signature) {
            self.order.push_back(signature);
        }
    }

    /// Evicts down to `capacity`, oldest first. Returns the evicted
    /// signatures in eviction order.
    fn evict_to(&mut self, capacity: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while self.order.len() > capacity {
            out.push(self.order.pop_front().expect("len > capacity"));
        }
        out
    }
}

/// Runs the full multi-tenant serve session. See the module docs for
/// the three-layer structure. Never panics on overload or tenant
/// faults: every tenant terminates with correct workload results.
pub fn run_serve(ctx: &EvalContext, config: &ServeConfig) -> Result<ServeOutcome> {
    assert!(config.runs_per_tenant >= 2, "need profiling + one more run");
    let mut root = config.telemetry.span("serve.run");
    let tel = config.telemetry.under(&root);

    // ---- Layer 1: admission (lane-invariant event simulation). ----
    let specs = fleet(
        config.seed,
        config.tenants,
        config.arrival_spacing_us,
        config.service_model_us,
        config.distinct_workloads,
        config.kernels,
    );
    let admissions = admission_schedule(&specs, config.max_active, config.defer_capacity);

    // ---- Shared infrastructure. ----
    let cache = BitstreamCache::new();
    let quarantine = Arc::new(Quarantine::new());
    let memo = Arc::new(SearchMemo::new());
    if let Some(store) = &config.store {
        let state = store.state();
        if !state.is_empty() {
            let absorbed = cache.absorb_store(&state);
            let mut quarantined = 0u64;
            for (sig, reason) in &state.quarantine {
                if quarantine.insert(*sig, reason) {
                    quarantined += 1;
                }
            }
            tel.add(names::STORE_WARM_RESTARTS, 1);
            tel.event(
                "serve.warm_restart",
                &[
                    ("entries_absorbed", TelValue::U64(absorbed as u64)),
                    ("quarantine_absorbed", TelValue::U64(quarantined)),
                ],
            );
        }
    }
    let mut ledger = CacheLedger::new();
    // Entries hydrated from the store count against capacity too.
    if let Some(store) = &config.store {
        for sig in store.state().entries.keys() {
            ledger.note_fresh(*sig);
        }
    }

    // ---- Layer 2: execution, serially in admission order. ----
    // Admitted tenants run against the shared caches in the order their
    // slots were granted; shed tenants (software-only, no shared-infra
    // contact) follow in arrival order.
    let mut exec_order: Vec<usize> = (0..specs.len()).collect();
    exec_order.sort_by_key(|&i| match admissions[i] {
        Admission::Admitted { at_us } => (0u8, at_us, specs[i].id),
        Admission::Deferred { at_us, .. } => (0u8, at_us, specs[i].id),
        Admission::Shed => (1u8, specs[i].arrival_us, specs[i].id),
    });

    let mut modules: HashMap<u64, Module> = HashMap::new();
    let mut outcomes: Vec<Option<TenantOutcome>> = vec![None; specs.len()];
    let mut pool_jobs: Vec<PoolJob> = Vec::new();
    // Per-tenant index into `pool_jobs` for the timing post-pass.
    let mut tenant_jobs: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut evictions = 0u64;

    for &i in &exec_order {
        let spec = &specs[i];
        let admission = admissions[i];
        let module = modules
            .entry(spec.workload_seed)
            .or_insert_with(|| {
                workload_module(
                    spec,
                    config.kernels,
                    config.hot_iters,
                    config.near_duplicate,
                )
            })
            .clone();
        let args = [Value::I(spec.sel), Value::I(2)];

        let mut ws = WorkloadSession::new(config.vm_tier);
        let profile = ws.profile_run(&module, "main", &args, &tel)?;

        let mut degraded: Option<DegradedReason> = None;
        let mut report: Option<SpecializeReport> = None;
        let mut specialized: Option<(Module, Woolcano)> = None;

        if admission.admitted_at_us().is_some() {
            // Fault streams are pure in (plan, tenant id, epoch, site,
            // key, attempt): invariant under admission order and fleet
            // size (satellite regression in jitise-faults).
            let tinj = config.faults.for_tenant(spec.id).at_epoch(spec.id);
            let worker_key = {
                let mut h = SigHasher::new();
                h.write_str("runtime.worker");
                h.write_str("main");
                h.finish()
            };
            let winj = tinj.scope(worker_key, 1);
            if winj.decide(FaultSite::WorkerDeath).is_some() {
                tel.add(names::FAULTS_INJECTED, 1);
                degraded = Some(DegradedReason::WorkerDisconnected);
            } else if winj.decide(FaultSite::WorkerStall).is_some() {
                tel.add(names::FAULTS_INJECTED, 1);
                degraded = Some(DegradedReason::WorkerStalled);
            } else {
                let spec_config = SpecializeConfig {
                    search: SearchConfig {
                        memo: Some(Arc::clone(&memo)),
                        ..SearchConfig::default()
                    },
                    telemetry: tel.clone(),
                    faults: tinj,
                    retry: config.retry,
                    quarantine: Arc::clone(&quarantine),
                    cad_workers: config.cad_workers,
                    store: config.store.clone(),
                    vm_tier: config.vm_tier,
                    overlay: config.overlay.clone(),
                    ..SpecializeConfig::default()
                };
                let mut m = module.clone();
                let machine = Woolcano::with_telemetry(512, tel.clone());
                let (session, jobs) = SpecializeSession::begin(
                    &m,
                    &profile,
                    &machine,
                    &ctx.estimator,
                    &ctx.db,
                    &ctx.netlists,
                    &cache,
                    &spec_config,
                );
                let results =
                    parallel_map_indexed(config.cad_workers, &jobs, |_, job| session.execute(job));
                match session.finalize(&mut m, results) {
                    Err(e) => degraded = Some(DegradedReason::SpecializeFailed(e.to_string())),
                    Ok(r) => {
                        // Deadline check is lane-invariant by design:
                        // `cpu_time` is the schedule-invariant total,
                        // not the per-lane makespan.
                        if r.cpu_time > config.deadline {
                            degraded = Some(DegradedReason::DeadlineExceeded);
                        } else {
                            specialized = Some((m, machine));
                        }
                        report = Some(r);
                    }
                }
            }
            if let Some(reason) = &degraded {
                tel.add(names::SERVE_DEGRADED, 1);
                tel.add(names::RUNTIME_DEGRADED, 1);
                tel.event(
                    "serve.degraded",
                    &[
                        ("tenant", TelValue::U64(spec.id)),
                        ("reason", TelValue::Str(format!("{reason:?}"))),
                    ],
                );
            }
        }

        // The committed work stays shared even when the committing
        // tenant degraded on deadline: evict only on capacity.
        if let Some(r) = &report {
            for c in &r.candidates {
                if !c.cache_hit {
                    ledger.note_fresh(c.signature);
                }
            }
            for sig in ledger.evict_to(config.cache_capacity) {
                if cache.remove(sig) {
                    evictions += 1;
                    tel.add(names::SERVE_CACHE_EVICTIONS, 1);
                    if let Some(store) = &config.store {
                        let _ = store.append(Record::Evict { signature: sig });
                    }
                }
            }

            // Timing post-pass inputs: one pool job per candidate that
            // occupied a CAD lane (fresh work, retries, failures).
            let ready_at =
                SimTime::from_micros(admission.admitted_at_us().expect("report implies admitted"));
            let jobs = tenant_jobs.entry(spec.id).or_default();
            for c in &r.candidates {
                // Two-tier candidates charge the overlay assembly too:
                // both the fast install and its full-CAD upgrade occupy
                // the shared pool.
                let charge = if c.cache_hit {
                    c.time_lost
                } else {
                    c.total() + c.time_lost + c.overlay_time
                };
                if charge > SimTime::ZERO {
                    jobs.push(pool_jobs.len());
                    pool_jobs.push(PoolJob {
                        tenant: spec.id,
                        charge,
                        ready_at,
                    });
                }
            }
            for f in &r.failed {
                if f.time_lost > SimTime::ZERO {
                    jobs.push(pool_jobs.len());
                    pool_jobs.push(PoolJob {
                        tenant: spec.id,
                        charge: f.time_lost,
                        ready_at,
                    });
                }
            }
        }

        // Remaining workload runs: adapted when healthy, software-only
        // when shed or degraded. Answers never change either way.
        for _ in 1..config.runs_per_tenant {
            match &specialized {
                Some((m, machine)) => ws.adapted_run(m, machine, "main", &args, &tel)?,
                None => ws.software_run(&module, "main", &args, &tel)?,
            }
        }

        outcomes[i] = Some(TenantOutcome {
            id: spec.id,
            admission,
            degraded,
            cache_hits: report.as_ref().map_or(0, |r| r.cache_hits as u32),
            fresh: report.as_ref().map_or(0, |r| {
                r.candidates.iter().filter(|c| !c.cache_hit).count() as u32
            }),
            failed: report.as_ref().map_or(0, |r| r.failed.len() as u32),
            retries: report.as_ref().map_or(0, |r| r.retries),
            overlay_installs: report.as_ref().map_or(0, |r| r.overlay_installs as u32),
            upgrades: report.as_ref().map_or(0, |r| r.upgrades as u32),
            cpu_time: report.as_ref().map_or(SimTime::ZERO, |r| r.cpu_time),
            speedup_bits: ws.observed_speedup().to_bits(),
            results: ws.into_results(),
        });
    }

    let mut tenants: Vec<TenantOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every tenant executed"))
        .collect();
    tenants.sort_by_key(|t| t.id);

    // ---- Layer 3: DRR timing post-pass (lane-dependent). ----
    let drr = DrrConfig {
        lanes: config.cad_workers.max(1),
        quantum: config.quantum,
    };
    let schedule = drr_dispatch(&pool_jobs, &drr);
    let mut max_rounds = 0u32;
    for d in &schedule.dispatched {
        debug_assert!(
            d.rounds_waited < round_bound(pool_jobs[d.job].charge, drr.quantum),
            "starvation bound violated"
        );
        max_rounds = max_rounds.max(d.rounds_waited);
    }
    let finish = schedule.finish_by_job();
    let mut ttfs_us: Vec<u64> = Vec::new();
    for t in &tenants {
        if t.degraded.is_some() {
            continue;
        }
        let Some(at_us) = t.admission.admitted_at_us() else {
            continue;
        };
        let spec = &specs[t.id as usize];
        let cad_done = tenant_jobs
            .get(&t.id)
            .into_iter()
            .flatten()
            .filter_map(|j| finish.get(j))
            .max()
            .copied()
            .unwrap_or(SimTime::ZERO);
        let first_speedup = cad_done.max(SimTime::from_micros(at_us));
        let us = (first_speedup.as_nanos() / 1_000).saturating_sub(spec.arrival_us);
        ttfs_us.push(us);
        tel.observe(names::SERVE_TTFS_US, us);
    }
    let hist = HistogramSnapshot::from_values("serve.ttfs_us", &ttfs_us);
    let timing = FleetTiming {
        cad_workers: drr.lanes,
        makespan: schedule.makespan,
        ttfs_p50_us: hist.quantile(0.5),
        ttfs_p99_us: hist.quantile(0.99),
        max_queue_depth: schedule.max_queue_depth,
        max_rounds_waited: max_rounds,
        pool_jobs: pool_jobs.len(),
    };

    // ---- Totals and counters. ----
    let mut admitted = 0u32;
    let mut deferred = 0u32;
    let mut shed = 0u32;
    let mut degraded_n = 0u32;
    let mut cache_hits = 0u64;
    let mut fresh = 0u64;
    let mut overlay_installs = 0u64;
    let mut upgrades = 0u64;
    for t in &tenants {
        match t.admission {
            Admission::Admitted { .. } => admitted += 1,
            Admission::Deferred { .. } => deferred += 1,
            Admission::Shed => shed += 1,
        }
        if t.degraded.is_some() {
            degraded_n += 1;
        }
        cache_hits += t.cache_hits as u64;
        fresh += t.fresh as u64;
        overlay_installs += t.overlay_installs as u64;
        upgrades += t.upgrades as u64;
    }
    tel.add(names::SERVE_ADMITTED, (admitted + deferred) as u64);
    tel.add(names::SERVE_DEFERRED, deferred as u64);
    tel.add(names::SERVE_SHED, shed as u64);

    let store_fingerprint = config.store.as_ref().map(|s| s.state().fingerprint());
    root.field("tenants", TelValue::U64(tenants.len() as u64));
    root.field("shed", TelValue::U64(shed as u64));
    root.field("degraded", TelValue::U64(degraded_n as u64));
    root.set_sim_time(schedule.makespan);
    drop(root);

    Ok(ServeOutcome {
        tenants,
        admitted,
        deferred,
        shed,
        degraded: degraded_n,
        cache_hits,
        fresh,
        overlay_installs,
        upgrades,
        evictions,
        store_fingerprint,
        timing,
    })
}
