//! Synthetic tenant fleet and the admission-control simulator.
//!
//! Both halves are **lane-invariant**: tenant specs are a pure function
//! of the fleet seed, and the admission simulator charges every active
//! session a pool-width-*independent* modeled service time. Admission,
//! deferral, and shed decisions therefore never depend on
//! `cad_workers`, which is what lets the whole `ServeOutcome`
//! fingerprint stay bit-identical across pool widths (the actual CAD
//! contention is simulated separately, as a timing post-pass — see
//! DESIGN.md §16).

use jitise_base::hash::SigHasher;
use jitise_base::rng::SplitMix64;
use std::collections::{BTreeSet, VecDeque};

/// One synthetic tenant, fully determined by the fleet seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant id (also its arrival rank: ids arrive in order).
    pub id: u64,
    /// Arrival time on the open-loop schedule, microseconds.
    pub arrival_us: u64,
    /// Modeled active-session residency used by admission control,
    /// microseconds. Deliberately independent of the CAD pool width.
    pub service_us: u64,
    /// Workload-generator seed. Tenants cycle over
    /// `distinct_workloads` seeds, so a growing population revisits the
    /// same candidate signatures — the shared-cache hit population.
    pub workload_seed: u64,
    /// Kernel selector passed to the workload entry point.
    pub sel: i64,
}

/// Builds the seeded open-loop arrival fleet: `tenants` specs with
/// jittered inter-arrival gaps around `spacing_us` and per-tenant
/// service times around `service_us`. Pure in its arguments.
pub fn fleet(
    seed: u64,
    tenants: u32,
    spacing_us: u64,
    service_us: u64,
    distinct_workloads: u32,
    kernels: u32,
) -> Vec<TenantSpec> {
    let mut rng = SplitMix64::new(seed ^ 0x0073_6572_7665); // "serve"
    let distinct = distinct_workloads.max(1) as u64;
    let kernels = kernels.max(1) as u64;
    let mut at = 0u64;
    (0..tenants as u64)
        .map(|id| {
            at += 1 + rng.next_below(spacing_us.max(1) * 2);
            let service = service_us / 2 + rng.next_below(service_us.max(1));
            let mut h = SigHasher::new();
            h.write_str("serve.workload");
            h.write_u64(seed).write_u64(id % distinct);
            TenantSpec {
                id,
                arrival_us: at,
                service_us: service.max(1),
                workload_seed: h.finish(),
                sel: ((id / distinct) % kernels) as i64,
            }
        })
        .collect()
}

/// Typed admission outcome. Never a panic: overload surfaces as
/// [`Admission::Deferred`] (bounded queue) and then [`Admission::Shed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Granted a slot at arrival.
    Admitted {
        /// Admission time (= arrival time), microseconds.
        at_us: u64,
    },
    /// Parked in the bounded defer queue, then granted a slot when one
    /// freed. Deferral is FIFO.
    Deferred {
        /// Admission time after waiting, microseconds.
        at_us: u64,
        /// Time spent in the defer queue, microseconds.
        waited_us: u64,
    },
    /// Rejected at arrival: slots busy *and* defer queue full. The
    /// tenant still runs, software-only — load shedding degrades
    /// service, never correctness.
    Shed,
}

impl Admission {
    /// Admission time, if the tenant was admitted at all.
    pub fn admitted_at_us(&self) -> Option<u64> {
        match self {
            Admission::Admitted { at_us } => Some(*at_us),
            Admission::Deferred { at_us, .. } => Some(*at_us),
            Admission::Shed => None,
        }
    }
}

/// Simulates admission control over the fleet: `max_active` concurrent
/// session slots and a FIFO defer queue bounded at `defer_capacity`.
/// Returns one [`Admission`] per spec, in spec order.
///
/// Event order is deterministic: releases at time `t` are processed
/// before an arrival at `t` (earliest finish first, ties by tenant id),
/// and each release immediately promotes the defer queue's head.
pub fn admission_schedule(
    specs: &[TenantSpec],
    max_active: usize,
    defer_capacity: usize,
) -> Vec<Admission> {
    assert!(max_active > 0, "admission needs at least one active slot");
    let mut out = vec![Admission::Shed; specs.len()];
    let mut free = max_active;
    // (finish_us, tenant index) — BTreeSet iterates in release order.
    let mut active: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut deferred: VecDeque<usize> = VecDeque::new();

    let release_until = |active: &mut BTreeSet<(u64, usize)>,
                         deferred: &mut VecDeque<usize>,
                         free: &mut usize,
                         out: &mut Vec<Admission>,
                         now: u64| {
        while let Some(&(finish, idx)) = active.iter().next() {
            if finish > now {
                break;
            }
            active.remove(&(finish, idx));
            *free += 1;
            if let Some(j) = deferred.pop_front() {
                // The freed slot goes straight to the queue head.
                let at = finish.max(specs[j].arrival_us);
                out[j] = Admission::Deferred {
                    at_us: at,
                    waited_us: at - specs[j].arrival_us,
                };
                active.insert((at + specs[j].service_us, j));
                *free -= 1;
            }
        }
    };

    for (i, spec) in specs.iter().enumerate() {
        release_until(
            &mut active,
            &mut deferred,
            &mut free,
            &mut out,
            spec.arrival_us,
        );
        if free > 0 {
            out[i] = Admission::Admitted {
                at_us: spec.arrival_us,
            };
            active.insert((spec.arrival_us + spec.service_us, i));
            free -= 1;
        } else if deferred.len() < defer_capacity {
            deferred.push_back(i);
        } else {
            out[i] = Admission::Shed;
        }
    }
    // Settle the tail: every still-deferred tenant is admitted as slots
    // drain after the last arrival.
    release_until(&mut active, &mut deferred, &mut free, &mut out, u64::MAX);
    debug_assert!(deferred.is_empty(), "tail settlement drains the queue");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, arrival_us: u64, service_us: u64) -> TenantSpec {
        TenantSpec {
            id,
            arrival_us,
            service_us,
            workload_seed: id,
            sel: 0,
        }
    }

    #[test]
    fn fleet_is_deterministic_and_shares_workloads() {
        let a = fleet(2011, 16, 400, 2500, 4, 2);
        let b = fleet(2011, 16, 400, 2500, 4, 2);
        assert_eq!(a, b);
        assert_eq!(a[0].workload_seed, a[4].workload_seed, "cycle of 4");
        assert_ne!(a[0].workload_seed, a[1].workload_seed);
        assert!(a.windows(2).all(|w| w[0].arrival_us < w[1].arrival_us));
    }

    #[test]
    fn admits_defers_and_sheds_in_order() {
        // One slot, one defer seat; three overlapping arrivals.
        let specs = vec![spec(0, 10, 100), spec(1, 20, 100), spec(2, 30, 100)];
        let adm = admission_schedule(&specs, 1, 1);
        assert_eq!(adm[0], Admission::Admitted { at_us: 10 });
        assert_eq!(
            adm[1],
            Admission::Deferred {
                at_us: 110,
                waited_us: 90
            }
        );
        assert_eq!(adm[2], Admission::Shed);
    }

    #[test]
    fn release_at_arrival_time_frees_the_slot_first() {
        let specs = vec![spec(0, 0, 50), spec(1, 50, 50)];
        let adm = admission_schedule(&specs, 1, 0);
        assert_eq!(adm[1], Admission::Admitted { at_us: 50 });
    }

    #[test]
    fn deferred_promotion_is_fifo() {
        let specs = vec![
            spec(0, 0, 100),
            spec(1, 10, 10),
            spec(2, 20, 10),
            spec(3, 30, 10),
        ];
        let adm = admission_schedule(&specs, 1, 3);
        // Tenants 1..3 defer; promotions happen in queue order.
        let at = |i: usize| adm[i].admitted_at_us().unwrap();
        assert_eq!(at(1), 100);
        assert_eq!(at(2), 110);
        assert_eq!(at(3), 120);
    }
}
