//! jitise-serve: multi-tenant specialization service.
//!
//! Runs many synthetic tenants (from the calibrated `jitise-apps`
//! generator, on a seeded open-loop arrival schedule) against **shared**
//! just-in-time specialization infrastructure: one content-addressed
//! bitstream cache, one quarantine, one crash-consistent store WAL, and
//! one bounded CAD worker pool. The robustness contract:
//!
//! - **Admission control** — bounded active slots plus a bounded FIFO
//!   defer queue; overload surfaces as typed [`Admission::Deferred`] /
//!   [`Admission::Shed`] outcomes, never a panic, and shed tenants still
//!   get correct software-only results.
//! - **Fair scheduling** — the shared pool is arbitrated with deficit
//!   round robin ([`jitise_cad::sched`]), so a heavy tenant cannot
//!   starve a light one: every job's scheduling delay stays below
//!   `ceil(charge/quantum)` rounds.
//! - **Graceful degradation** — worker faults, specialization failures,
//!   and per-tenant deadline exhaustion degrade only the affected tenant
//!   to software-only execution ([`jitise_core::DegradedReason`]); every
//!   other tenant is untouched.
//! - **Crash-storm survival** — a store death mid-serve plus burst CAD
//!   faults recovers to exactly the committed prefix on warm restart,
//!   and the service keeps serving.
//!
//! Determinism is the through-line: a fixed-seed, fixed-fleet run
//! produces a bit-identical [`ServeOutcome::fingerprint`] at any
//! `cad_workers`. See DESIGN.md §16.

pub mod engine;
pub mod tenant;

pub use engine::{
    run_serve, workload_module, FleetTiming, ServeConfig, ServeOutcome, TenantOutcome,
};
pub use tenant::{admission_schedule, fleet, Admission, TenantSpec};
