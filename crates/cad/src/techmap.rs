//! Top-level synthesis (the Xst stage).
//!
//! "Since all the netlists for all hardware components are retrieved from a
//! database there is no need to re-synthesize them. The synthesis process
//! thus has to generate a netlist just for the top level module" (§V-C).
//!
//! This module does that real work: it flattens the structural VHDL (the
//! datapath's component instances) and the pre-synthesized component
//! netlists into one primitive netlist, aliasing the nets that the port
//! maps connect. Aliasing uses a union–find over net ids followed by a
//! compaction pass, so the result satisfies the single-driver invariant by
//! construction.

use jitise_base::{Error, Result};
use jitise_pivpav::{CadProject, Cell, CellKind, Netlist, PortDir};

/// Union–find over net ids.
struct NetUnion {
    parent: Vec<u32>,
}

impl NetUnion {
    fn new(n: u32) -> Self {
        NetUnion {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Flattens a CAD project into one top-level netlist.
///
/// Top-level signals become nets; each component instance contributes its
/// pre-synthesized cells with input/output ports aliased onto the signals
/// of the datapath wiring.
pub fn synthesize_top(project: &CadProject) -> Result<Netlist> {
    let vhdl = &project.vhdl;
    let mut top = Netlist::new(format!("{}_flat", project.name));

    // One net per top-level signal.
    for _ in 0..vhdl.num_signals {
        top.new_net();
    }

    // Absorb instance netlists; remember (offset, netlist) per instance.
    let mut offsets = Vec::with_capacity(vhdl.instances.len());
    for (inst, nl) in vhdl.instances.iter().zip(&project.netlists) {
        let off = top.absorb(nl);
        offsets.push((inst, nl, off));
    }

    // Build the alias relation.
    let mut uf = NetUnion::new(top.num_nets);
    for (inst, nl, off) in &offsets {
        // Map the component's input ports (in declaration order) onto the
        // instance's input signals, bit 0 of each port to the signal (the
        // datapath model is word-level: one signal per port).
        let in_ports: Vec<_> = nl.ports.iter().filter(|p| p.dir == PortDir::In).collect();
        if in_ports.len() < inst.input_signals.len().min(2) && !inst.input_signals.is_empty() {
            return Err(Error::Cad(format!(
                "core {} has {} input ports but instance {} drives {}",
                nl.name,
                in_ports.len(),
                inst.label,
                inst.input_signals.len()
            )));
        }
        for (port, &sig) in in_ports.iter().zip(&inst.input_signals) {
            for &bit_net in &port.nets {
                uf.union(sig, bit_net + off);
            }
        }
        // Extra input signals (3rd+ operand of select etc.) alias onto the
        // last port — a word-level simplification.
        if inst.input_signals.len() > in_ports.len() {
            if let Some(last) = in_ports.last() {
                for &sig in &inst.input_signals[in_ports.len()..] {
                    for &bit_net in &last.nets {
                        uf.union(sig, bit_net + off);
                    }
                }
            }
        }
        // Output port aliases onto the instance's output signal.
        if let Some(out_port) = nl.ports.iter().find(|p| p.dir == PortDir::Out) {
            for &bit_net in &out_port.nets {
                uf.union(inst.output_signal, bit_net + off);
            }
        }
    }

    // Compact: renumber alias classes densely and rebuild the cell list,
    // keeping only one driver per class (component-internal drivers win
    // over the aliased port wiring).
    let mut class_of = vec![u32::MAX; top.num_nets as usize];
    let mut next = 0u32;
    fn resolve(uf: &mut NetUnion, class_of: &mut [u32], next: &mut u32, n: u32) -> u32 {
        let root = uf.find(n);
        if class_of[root as usize] == u32::MAX {
            class_of[root as usize] = *next;
            *next += 1;
        }
        class_of[root as usize]
    }

    let mut cells = Vec::with_capacity(top.cells.len());
    let mut driver_seen = std::collections::HashSet::new();
    for c in &top.cells {
        let out = resolve(&mut uf, &mut class_of, &mut next, c.output);
        // Single-driver: if two absorbed cells drive aliased nets (possible
        // when a port net is internally driven), insert no duplicate —
        // first driver wins, later ones become buffers driving fresh nets.
        let output = if driver_seen.insert(out) {
            out
        } else {
            let fresh = next;
            next += 1;
            fresh
        };
        cells.push(Cell {
            kind: c.kind,
            inputs: c
                .inputs
                .iter()
                .map(|&n| resolve(&mut uf, &mut class_of, &mut next, n))
                .collect(),
            output,
        });
    }

    // Top-level ports: module inputs and outputs.
    let mut flat = Netlist::new(top.name.clone());
    flat.cells = cells;
    // Port-net classes are deduplicated: the word-level port maps can
    // alias two datapath signals onto one component port (a select's third
    // operand shares the `b` port), and a class must appear at most once
    // across the top-level ports to preserve the single-driver invariant.
    // A class that is already driven by an absorbed cell must not appear
    // as a top-level *input* either: the word-level port maps can alias an
    // input signal onto an internally-driven wire (select's shared port),
    // making the external pin redundant.
    let cell_driven: std::collections::HashSet<u32> = flat.cells.iter().map(|c| c.output).collect();
    let mut seen_port_classes = std::collections::HashSet::new();
    seen_port_classes.extend(cell_driven.iter().copied());
    let dedup = |nets: Vec<u32>, seen: &mut std::collections::HashSet<u32>| -> Vec<u32> {
        nets.into_iter().filter(|n| seen.insert(*n)).collect()
    };
    let in_nets: Vec<u32> = dedup(
        vhdl.inputs
            .iter()
            .map(|&s| resolve(&mut uf, &mut class_of, &mut next, s))
            .collect(),
        &mut seen_port_classes,
    );
    // Constants: model as IBuf-driven nets (tied off in hardware).
    let const_nets: Vec<u32> = dedup(
        vhdl.constants
            .iter()
            .map(|&(s, _)| resolve(&mut uf, &mut class_of, &mut next, s))
            .collect(),
        &mut seen_port_classes,
    );
    let mut seen_out = std::collections::HashSet::new();
    let out_nets: Vec<u32> = dedup(
        vhdl.outputs
            .iter()
            .map(|&s| resolve(&mut uf, &mut class_of, &mut next, s))
            .collect(),
        &mut seen_out,
    );
    flat.num_nets = flat.num_nets.max(next);
    flat.ports.push(jitise_pivpav::Port {
        name: "in".into(),
        dir: PortDir::In,
        nets: in_nets,
    });
    if !const_nets.is_empty() {
        flat.ports.push(jitise_pivpav::Port {
            name: "const".into(),
            dir: PortDir::In,
            nets: const_nets,
        });
    }
    flat.ports.push(jitise_pivpav::Port {
        name: "out".into(),
        dir: PortDir::Out,
        nets: out_nets,
    });

    // The flattened netlist must be structurally valid.
    flat.validate().map_err(Error::Cad)?;
    Ok(flat)
}

/// Complexity measure of a flat netlist used by the map/PAR runtime model:
/// DSP blocks weigh more than LUTs (the paper: "their duration depends on
/// the number of hardware components and the type of operation they
/// perform. For instance, the implementation of the shift operator is
/// trivial in contrast to a division").
pub fn netlist_complexity(nl: &Netlist) -> f64 {
    let luts = nl.lut_count() as f64;
    let carries = nl
        .cells
        .iter()
        .filter(|c| c.kind == CellKind::Carry)
        .count() as f64;
    let ffs = nl.ff_count() as f64;
    let dsps = nl.dsp_count() as f64;
    luts + 0.5 * carries + 0.3 * ffs + 12.0 * dsps
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, Dfg, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_pivpav::{create_project, CircuitDb, NetlistCache};
    use jitise_vm::BlockKey;

    fn project_for_chain() -> CadProject {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::ci32(3));
        let z = b.xor(y, x);
        b.ret(z);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        create_project(&db, &cache, &f, &dfg, &cand).unwrap().0
    }

    #[test]
    fn flattens_to_valid_netlist() {
        let project = project_for_chain();
        let flat = synthesize_top(&project).unwrap();
        assert_eq!(flat.validate(), Ok(()));
        // All component cells arrive in the flat netlist.
        let expected: usize = project.netlists.iter().map(|n| n.cells.len()).sum();
        assert_eq!(flat.cells.len(), expected);
        assert!(flat.lut_count() > 0);
        // Ports: in, const, out.
        assert_eq!(flat.ports.len(), 3);
    }

    #[test]
    fn complexity_weights_dsp() {
        let project = project_for_chain();
        let flat = synthesize_top(&project).unwrap();
        let c = netlist_complexity(&flat);
        assert!(c > flat.lut_count() as f64, "DSPs and FFs add weight");
    }

    #[test]
    fn deterministic() {
        let a = synthesize_top(&project_for_chain()).unwrap();
        let b = synthesize_top(&project_for_chain()).unwrap();
        assert_eq!(a, b);
    }
}
