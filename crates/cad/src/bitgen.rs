//! Bitstream generation.
//!
//! Serializes a placed-and-routed design into a partial-reconfiguration
//! bitstream: one configuration frame per fabric column (Virtex-4 frames
//! address column-wise), each carrying the LUT truth tables, FF/DSP flags,
//! and routing-switch bits of its tiles, preceded by a small header and
//! followed by a CRC32. This is the artifact the bitstream cache stores
//! and the ICAP controller loads.

use crate::fabric::Fabric;
use crate::place::Placement;
use crate::route::RoutedDesign;
use jitise_base::codec::Encoder;
use jitise_base::hash::hash_bytes;
use jitise_pivpav::{CellKind, Netlist};

/// A generated (partial) bitstream.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    /// Raw bytes (header + frames + CRC).
    pub bytes: Vec<u8>,
    /// Number of configuration frames.
    pub frames: u32,
    /// CRC over the frame payload.
    pub crc: u32,
    /// True if this is a partial (EAPR) bitstream; false = full-device.
    pub partial: bool,
}

/// Sync word opening every bitstream (Xilinx-style). Shared with the
/// overlay assembler so overlay descriptors parse as valid bitstreams.
pub(crate) const SYNC_WORD: u32 = 0xAA99_5566;

/// CRC32 over bitstream frame payloads (the shared IEEE implementation
/// from `jitise-base`, re-exported so cad callers keep their import path).
pub use jitise_base::codec::crc32;

/// Generates the partial bitstream for a routed design.
pub fn bitgen(
    fabric: &Fabric,
    nl: &Netlist,
    placement: &Placement,
    routed: &RoutedDesign,
    partial: bool,
) -> Bitstream {
    // Group cells by column.
    let mut col_cells: Vec<Vec<usize>> = vec![Vec::new(); fabric.width as usize];
    for (i, _) in nl.cells.iter().enumerate() {
        let (x, _) = fabric.xy(placement.cell_tile[i]);
        col_cells[x as usize].push(i);
    }
    // Group routed edges by the column of their lower tile.
    let mut col_edges: Vec<Vec<u32>> = vec![Vec::new(); fabric.width as usize];
    for net in &routed.nets {
        for &t in &net.tiles {
            let (x, _) = fabric.xy(t);
            col_edges[x as usize].push(t);
        }
    }

    let mut payload = Encoder::new();
    let mut frames = 0u32;
    for x in 0..fabric.width as usize {
        frames += 1;
        payload.put_varu32(x as u32);
        payload.put_varu32(col_cells[x].len() as u32);
        for &ci in &col_cells[x] {
            let c = &nl.cells[ci];
            let (_, y) = fabric.xy(placement.cell_tile[ci]);
            payload.put_varu32(y);
            match c.kind {
                CellKind::Lut4 { mask } => {
                    payload.put_varu32(0);
                    payload.put_varu32(mask as u32);
                }
                CellKind::Ff => {
                    payload.put_varu32(1);
                }
                CellKind::Carry => {
                    payload.put_varu32(2);
                }
                CellKind::Dsp48 => {
                    payload.put_varu32(3);
                }
                CellKind::IBuf => {
                    payload.put_varu32(4);
                }
                CellKind::OBuf => {
                    payload.put_varu32(5);
                }
            }
        }
        payload.put_varu32(col_edges[x].len() as u32);
        for &t in &col_edges[x] {
            payload.put_varu32(t);
        }
    }

    // For a full-device bitstream, append the static-region frames (the
    // whole rest of the device, modeled as zero-fill frames). This is why
    // full bitgen moves much more data than EAPR partials.
    if !partial {
        let static_frames = fabric.width * 6; // static region ≈ 6x PR region
        for i in 0..static_frames {
            frames += 1;
            payload.put_varu32(1_000 + i);
            payload.put_varu32(0);
            payload.put_varu32(0);
        }
    }

    let payload = payload.finish();
    let crc = crc32(&payload);

    let mut out = Encoder::new();
    out.put_u64(SYNC_WORD as u64);
    out.put_varu32(frames);
    out.put_varu32(payload.len() as u32);
    out.put_bytes(&payload);
    out.put_u64(crc as u64);

    Bitstream {
        bytes: out.finish(),
        frames,
        crc,
        partial,
    }
}

impl Bitstream {
    /// Verifies the embedded CRC.
    pub fn verify(&self) -> bool {
        let mut dec = jitise_base::codec::Decoder::new(&self.bytes);
        let Ok(sync) = dec.get_u64() else {
            return false;
        };
        if sync != SYNC_WORD as u64 {
            return false;
        }
        let Ok(_frames) = dec.get_varu32() else {
            return false;
        };
        let Ok(_len) = dec.get_varu32() else {
            return false;
        };
        let Ok(payload) = dec.get_bytes() else {
            return false;
        };
        let Ok(crc) = dec.get_u64() else {
            return false;
        };
        crc32(payload) as u64 == crc
    }

    /// Stable content identity (for cache sanity checks).
    pub fn content_hash(&self) -> u64 {
        hash_bytes(&self.bytes)
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Always false (a bitstream has at least its header).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlaceEffort};
    use crate::route::{route, RouteEffort};
    use jitise_pivpav::netlist::synthesize_core;

    fn fixture() -> (Fabric, Netlist, Placement, RoutedDesign) {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("b", 8, 50, 6, 1, 31);
        let p = place(&fabric, &nl, PlaceEffort::fast(), 7).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::fast()).unwrap();
        (fabric, nl, p, r)
    }

    #[test]
    fn partial_bitstream_valid_and_verifies() {
        let (fabric, nl, p, r) = fixture();
        let bs = bitgen(&fabric, &nl, &p, &r, true);
        assert!(bs.partial);
        assert_eq!(bs.frames, fabric.width);
        assert!(bs.verify());
        assert!(bs.len() > 64);
    }

    #[test]
    fn full_bitstream_much_larger() {
        let (fabric, nl, p, r) = fixture();
        let partial = bitgen(&fabric, &nl, &p, &r, true);
        let full = bitgen(&fabric, &nl, &p, &r, false);
        assert!(full.frames > partial.frames * 4);
        assert!(full.len() > partial.len());
    }

    #[test]
    fn corruption_detected() {
        let (fabric, nl, p, r) = fixture();
        let mut bs = bitgen(&fabric, &nl, &p, &r, true);
        assert!(bs.verify());
        let mid = bs.bytes.len() / 2;
        bs.bytes[mid] ^= 0xFF;
        assert!(!bs.verify(), "bit flip must break the CRC");
    }

    #[test]
    fn deterministic_and_content_sensitive() {
        let (fabric, nl, p, r) = fixture();
        let a = bitgen(&fabric, &nl, &p, &r, true);
        let b = bitgen(&fabric, &nl, &p, &r, true);
        assert_eq!(a, b);
        // A different placement changes the bitstream.
        let p2 = place(&fabric, &nl, PlaceEffort::fast(), 99).unwrap();
        let c = bitgen(&fabric, &nl, &p2, &r, true);
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
