//! # jitise-cad — FPGA CAD tool-flow simulator
//!
//! The *Instruction Implementation* phase of the ASIP specialization
//! process (paper Fig. 2): turning a prepared CAD project into a partial
//! reconfiguration bitstream. The paper uses Xilinx ISE 12.2 with the
//! Early-Access Partial Reconfiguration (EAPR) flow on a Virtex-4 FX100;
//! this crate implements a faithful scaled-down equivalent (see DESIGN.md
//! §1 for the substitution rationale):
//!
//! * [`fabric`] — the tile-grid fabric model with DSP columns, site
//!   capacities, and routing channels (the PR region).
//! * [`techmap`] — top-level synthesis: flattening the datapath VHDL and
//!   the pre-synthesized component netlists into one primitive netlist
//!   (the Xst stage that "has to generate a netlist just for the top
//!   level module").
//! * [`place`] — simulated-annealing placement (HPWL objective).
//! * [`route`] — negotiated-congestion maze routing (PathFinder-style).
//! * [`timing`] — static timing analysis of the implemented instruction.
//! * [`bitgen`] — column-frame bitstream serialization with CRC, partial
//!   (EAPR) and full-device variants.
//! * [`flow`] — the stage driver with the runtime cost model calibrated
//!   to Table III (Syn 4.22 s, Xst 10.60 s, Tra 8.99 s, Bitgen 151 s,
//!   map 40–456 s, PAR 56–728 s).
//! * [`sched`] — deficit-round-robin fair dispatch of CAD jobs across
//!   tenants sharing one bounded worker pool (serve runtime timing
//!   model; DESIGN.md §16).

//! * [`overlay`] — the millisecond fast path: covers a candidate datapath
//!   with pre-implemented coarse-grained cells instead of running the full
//!   flow, trading clock rate for install latency (DESIGN.md §17).

pub mod bitgen;
pub mod fabric;
pub mod flow;
pub mod overlay;
pub mod place;
pub mod route;
pub mod sched;
pub mod techmap;
pub mod timing;

pub use bitgen::{bitgen, crc32, Bitstream};
pub use fabric::{Fabric, SiteKind};
pub use flow::{run_flow, run_flow_accounted, FlowCost, FlowError, FlowOptions, FlowReport};
pub use overlay::{map_overlay, InstallTier, OverlayCell, OverlayLibrary, OverlayMap};
pub use place::{check_legal, place, PlaceEffort, Placement};
pub use route::{check_connected, route, RouteEffort, RoutedDesign};
pub use sched::{drr_dispatch, round_bound, DispatchOutcome, DispatchedJob, DrrConfig, PoolJob};
pub use techmap::{netlist_complexity, synthesize_top};
pub use timing::{analyze, cell_delay_ns, TimingReport};
