//! The FPGA CAD tool flow (the *Instruction Implementation* phase, Fig. 2).
//!
//! Runs the real scaled-down implementation pipeline — syntax check,
//! top-level synthesis, translate, map (slice packing), place & route,
//! timing analysis, bitstream generation — and reports stage runtimes from
//! a cost model calibrated to the paper's measurements:
//!
//! | stage      | paper (Table III / §V-C)       |
//! |------------|--------------------------------|
//! | Syn check  | 4.22 s ± 0.10                  |
//! | Xst        | 10.60 s ± 0.23                 |
//! | Translate  | 8.99 s ± 1.22                  |
//! | Map        | 40 s – 456 s (complexity)      |
//! | PAR        | 56 s – 728 s (1.4–2.5 × map)   |
//! | Bitgen     | 151 s ± 2.43 (EAPR partial)    |
//! | Bitgen     | 41 s (regular full bitstream)  |
//!
//! The stage *work* is real (the bitstream at the end is a function of the
//! candidate's netlist, placement and routing); only the reported wall
//! times come from the calibrated model, because the real 2011 Xilinx
//! flow's runtimes are what the paper studies and our host machine is not
//! a 2011 Dell T3500 (see DESIGN.md §1).

use crate::bitgen::{bitgen, Bitstream};
use crate::fabric::Fabric;
use crate::place::{check_legal, place, PlaceEffort, Placement};
use crate::route::{route, RouteEffort, RoutedDesign};
use crate::techmap::{netlist_complexity, synthesize_top};
use crate::timing::{analyze, TimingReport};
use jitise_base::hash::SigHasher;
use jitise_base::{Error, Result, SimTime};
use jitise_faults::{FaultInjector, FaultSite};
use jitise_pivpav::{CadProject, CellKind, Netlist};
use jitise_telemetry::{names, Telemetry, Value as TelValue};

/// Tool-flow options.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Placement effort.
    pub place_effort: PlaceEffort,
    /// Routing effort.
    pub route_effort: RouteEffort,
    /// Early-Access Partial Reconfiguration mode (the paper's default).
    /// `false` models the regular full-bitstream flow (41 s bitgen).
    pub eapr: bool,
    /// Placement seed.
    pub seed: u64,
    /// Tool-speedup factor for §VI-B extrapolations: 0.30 means "30 %
    /// faster tools", scaling every stage time by 0.70.
    pub tool_speedup: f64,
    /// Observability handle (disabled by default; zero overhead).
    pub telemetry: Telemetry,
    /// Fault injection handle, already scoped to (candidate, attempt) by
    /// the caller (disabled by default; zero overhead).
    pub faults: FaultInjector,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            place_effort: PlaceEffort::normal(),
            route_effort: RouteEffort::normal(),
            eapr: true,
            seed: 1,
            tool_speedup: 0.0,
            telemetry: Telemetry::disabled(),
            faults: FaultInjector::disabled(),
        }
    }
}

/// Simulated tool time spent by a flow execution, split the way Table II
/// splits its columns. For a *failed* execution this is the time the tools
/// burned before dying — the waste a retry pays for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCost {
    /// Constant stages (syntax + Xst + translate + bitgen).
    pub constant: SimTime,
    /// Map stage.
    pub map: SimTime,
    /// Place-and-route stage.
    pub par: SimTime,
}

impl FlowCost {
    /// Total simulated time across all stages.
    pub fn total(&self) -> SimTime {
        self.constant + self.map + self.par
    }
}

/// A flow failure carrying the simulated tool time wasted before it.
#[derive(Debug, Clone)]
pub struct FlowError {
    /// The underlying error.
    pub error: Error,
    /// Tool time spent up to and including the failing stage.
    pub spent: FlowCost,
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} of tool time)",
            self.error,
            self.spent.total()
        )
    }
}

impl From<FlowError> for Error {
    fn from(e: FlowError) -> Error {
        e.error
    }
}

impl FlowOptions {
    /// Bulk-experiment options: reduced placement effort but full routing
    /// negotiation (routing exits after one iteration when legal, so the
    /// extra iterations only cost time on congested designs — exactly the
    /// ones that need them).
    pub fn fast() -> Self {
        FlowOptions {
            place_effort: PlaceEffort::fast(),
            route_effort: RouteEffort::normal(),
            ..Default::default()
        }
    }
}

/// Report of one tool-flow execution.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Syntax-check time.
    pub syntax: SimTime,
    /// Top-level synthesis time.
    pub xst: SimTime,
    /// Translate time.
    pub translate: SimTime,
    /// Mapping time.
    pub map: SimTime,
    /// Place-and-route time.
    pub par: SimTime,
    /// Bitstream-generation time.
    pub bitgen: SimTime,
    /// Slices after packing.
    pub slices: u32,
    /// Routed wirelength.
    pub wirelength: u64,
    /// Timing of the implemented CI.
    pub timing: TimingReport,
    /// The bitstream.
    pub bitstream: Bitstream,
    /// Flat-netlist complexity driving the map/PAR model.
    pub complexity: f64,
}

impl FlowReport {
    /// Total tool-flow time (sum of all stages).
    pub fn total(&self) -> SimTime {
        self.syntax + self.xst + self.translate + self.map + self.par + self.bitgen
    }

    /// The constant-overhead share (everything except map and PAR),
    /// Table II's `const` column contribution of this candidate.
    pub fn constant_share(&self) -> SimTime {
        self.syntax + self.xst + self.translate + self.bitgen
    }
}

// ---- calibrated constants (seconds) ----
const SYNTAX_S: f64 = 4.22;
const SYNTAX_JITTER: f64 = 0.10;
const XST_S: f64 = 10.60;
const XST_JITTER: f64 = 0.23;
const TRANSLATE_S: f64 = 8.99;
const TRANSLATE_JITTER: f64 = 1.22;
const BITGEN_EAPR_S: f64 = 151.0;
const BITGEN_JITTER: f64 = 2.43;
const BITGEN_FULL_S: f64 = 41.0;
const MAP_MIN_S: f64 = 40.0;
const MAP_MAX_S: f64 = 456.0;
const PAR_RATIO_MIN: f64 = 1.4;
const PAR_RATIO_MAX: f64 = 2.5;
/// Complexity at which map time saturates (a float-divider-heavy
/// candidate).
const COMPLEXITY_SATURATION: f64 = 2_500.0;

/// Deterministic jitter in `[-1, 1]` derived from a name and a salt.
fn jitter(name: &str, salt: u64) -> f64 {
    let mut h = SigHasher::new();
    h.write_str(name);
    h.write_u64(salt);
    (h.finish() % 2_001) as f64 / 1_000.0 - 1.0
}

/// The syntax-check stage: a real structural sanity parse of the VHDL text.
fn syntax_check(project: &CadProject) -> Result<()> {
    let text = &project.vhdl_text;
    let entities = text.matches("entity ").count();
    let ends = text.matches("end entity").count() + text.matches("end architecture").count();
    if entities == 0 || ends < 2 {
        return Err(Error::Cad(
            "syntax check: malformed entity structure".into(),
        ));
    }
    if text.matches("port map").count() != project.vhdl.instances.len() {
        return Err(Error::Cad(
            "syntax check: instance/port-map count mismatch".into(),
        ));
    }
    Ok(())
}

/// The map stage: packs LUT/FF/carry cells into V4 slices (2 LUTs + 2 FFs
/// per slice); returns the slice count.
fn map_pack(flat: &Netlist) -> u32 {
    let luts = flat.lut_count() as u32;
    let carries = flat
        .cells
        .iter()
        .filter(|c| c.kind == CellKind::Carry)
        .count() as u32;
    let ffs = flat.ff_count() as u32;
    // LUT+carry share slice LUT sites; FFs pack beside them.
    let lut_sites = luts + carries;
    lut_sites.div_ceil(2).max(ffs.div_ceil(2))
}

/// Records one injector firing at `site` (counter + journal event) and
/// returns the error the failing tool stage reports.
fn injected_failure(
    tel: &Telemetry,
    faults: &FaultInjector,
    site: FaultSite,
    project: &str,
) -> Option<Error> {
    let kind = faults.decide(site)?;
    tel.add(names::FAULTS_INJECTED, 1);
    tel.event(
        "fault.injected",
        &[
            ("site", TelValue::Str(site.name().to_string())),
            ("kind", TelValue::Str(kind.name().to_string())),
        ],
    );
    Some(Error::Cad(format!(
        "injected {} fault at {} while implementing {project}",
        kind.name(),
        site.name()
    )))
}

/// Runs the complete Instruction Implementation flow on a project.
///
/// Convenience wrapper over [`run_flow_accounted`] that discards the
/// wasted-time accounting on failure.
pub fn run_flow(fabric: &Fabric, project: &CadProject, opts: &FlowOptions) -> Result<FlowReport> {
    run_flow_accounted(fabric, project, opts).map_err(|e| e.error)
}

/// Runs the flow, reporting how much simulated tool time a failure wasted.
///
/// A real CAD tool that crashes in PAR has still burned the synthesis,
/// map, and (partial) PAR runtime — the retry logic in the pipeline
/// charges exactly that waste to the candidate, so Table II-style
/// accounting stays exact even under injected faults.
pub fn run_flow_accounted(
    fabric: &Fabric,
    project: &CadProject,
    opts: &FlowOptions,
) -> std::result::Result<FlowReport, FlowError> {
    let scale = (1.0 - opts.tool_speedup).max(0.0);
    let stage = |base: f64, jit: f64, salt: u64| -> SimTime {
        SimTime::from_secs_f64((base + jit * jitter(&project.name, salt)) * scale)
    };
    let tel = &opts.telemetry;
    let mut spent = FlowCost::default();
    let fail = |error: Error, spent: FlowCost| FlowError { error, spent };

    // 1. Syntax check.
    let syntax = {
        let mut span = tel.span("cad.syntax");
        let t = stage(SYNTAX_S, SYNTAX_JITTER, 1);
        span.set_sim_time(t);
        if let Err(e) = syntax_check(project) {
            spent.constant += t;
            return Err(fail(e, spent));
        }
        t
    };
    spent.constant += syntax;

    // 2. Xst: top-level synthesis (real flattening).
    let mut xst_span = tel.span("cad.xst");
    let xst = stage(XST_S, XST_JITTER, 2);
    xst_span.set_sim_time(xst);
    let flat = match synthesize_top(project) {
        Ok(flat) => flat,
        Err(e) => {
            drop(xst_span);
            spent.constant += xst;
            return Err(fail(e, spent));
        }
    };
    drop(xst_span);
    spent.constant += xst;
    if let Some(e) = injected_failure(tel, &opts.faults, FaultSite::CadSynthesis, &project.name) {
        return Err(fail(e, spent));
    }

    // 3. Translate: consolidate netlists + constraints (validation pass).
    let translate = {
        let mut span = tel.span("cad.translate");
        let t = stage(TRANSLATE_S, TRANSLATE_JITTER, 3);
        span.set_sim_time(t);
        if let Err(e) = flat.validate().map_err(Error::Cad) {
            spent.constant += t;
            return Err(fail(e, spent));
        }
        t
    };
    spent.constant += translate;

    // 4. Map: slice packing; time scales with candidate complexity.
    let mut map_span = tel.span("cad.map");
    let slices = map_pack(&flat);
    // Use the metrics-level (uncapped) LUT counts for the runtime model so
    // a float divider costs like a float divider even though its cached
    // netlist is size-capped.
    let metric_complexity =
        project.vhdl.total_luts() as f64 + 30.0 * project.vhdl.total_dsps() as f64;
    let complexity = metric_complexity.max(netlist_complexity(&flat));
    let norm = (complexity / COMPLEXITY_SATURATION).min(1.0);
    let map_s = MAP_MIN_S + (MAP_MAX_S - MAP_MIN_S) * norm;
    let map_t = SimTime::from_secs_f64((map_s * (1.0 + 0.02 * jitter(&project.name, 4))) * scale);
    map_span.set_sim_time(map_t);
    map_span.field("slices", TelValue::U64(slices as u64));
    tel.observe("cad.complexity", complexity as u64);
    spent.map += map_t;
    if let Some(e) = injected_failure(tel, &opts.faults, FaultSite::CadMap, &project.name) {
        drop(map_span);
        return Err(fail(e, spent));
    }
    drop(map_span);

    // 5. PAR: real placement + routing; time = map × complexity ratio.
    // A failure anywhere inside PAR (placement, legality, routing) has
    // still paid the full PAR runtime: the tools die at the end of the
    // stage, not before starting it.
    let par_ratio = PAR_RATIO_MIN + (PAR_RATIO_MAX - PAR_RATIO_MIN) * norm;
    let par_t = SimTime::from_secs_f64(
        (map_s * par_ratio * (1.0 + 0.02 * jitter(&project.name, 5))) * scale,
    );
    let mut par_span = tel.span("cad.par");
    par_span.set_sim_time(par_t);
    spent.par += par_t;
    let par_stage = || -> Result<(Placement, RoutedDesign)> {
        let placement: Placement = place(fabric, &flat, opts.place_effort, opts.seed)?;
        check_legal(fabric, &flat, &placement)?;
        if let Some(e) = injected_failure(tel, &opts.faults, FaultSite::CadPlace, &project.name) {
            return Err(e);
        }
        let routed: RoutedDesign = route(fabric, &flat, &placement, opts.route_effort)?;
        tel.add(names::PLACER_MOVES, placement.moves);
        tel.add(names::PLACER_ACCEPTS, placement.accepted);
        tel.add(names::ROUTER_ITERATIONS, routed.iterations as u64);
        // PathFinder re-routes every multi-terminal net on each negotiation
        // iteration after the first: those re-routes are the rip-ups.
        let routable = routed.nets.iter().filter(|n| !n.edges.is_empty()).count() as u64;
        tel.add(
            names::ROUTER_RIPUPS,
            routed.iterations.saturating_sub(1) as u64 * routable,
        );
        if routed.overflow > 0 {
            return Err(Error::Cad(format!(
                "unroutable: {} channels over capacity",
                routed.overflow
            )));
        }
        if let Some(e) = injected_failure(tel, &opts.faults, FaultSite::CadRoute, &project.name) {
            return Err(e);
        }
        Ok((placement, routed))
    };
    let (placement, routed) = match par_stage() {
        Ok(v) => v,
        Err(e) => {
            drop(par_span);
            return Err(fail(e, spent));
        }
    };
    par_span.field("wirelength", TelValue::U64(routed.wirelength));
    drop(par_span);

    // 6. Timing + bitgen.
    let mut bitgen_span = tel.span("cad.bitgen");
    let timing = analyze(fabric, &flat, &placement, &routed);
    if let Some(e) = injected_failure(tel, &opts.faults, FaultSite::CadTiming, &project.name) {
        drop(bitgen_span);
        return Err(fail(e, spent));
    }
    let bitstream = bitgen(fabric, &flat, &placement, &routed, opts.eapr);
    let bitgen_t = if opts.eapr {
        stage(BITGEN_EAPR_S, BITGEN_JITTER, 6)
    } else {
        stage(BITGEN_FULL_S, BITGEN_JITTER, 6)
    };
    bitgen_span.set_sim_time(bitgen_t);
    bitgen_span.field("bytes", TelValue::U64(bitstream.len() as u64));
    bitgen_span.field("eapr", TelValue::Bool(opts.eapr));
    drop(bitgen_span);

    Ok(FlowReport {
        syntax,
        xst,
        translate,
        map: map_t,
        par: par_t,
        bitgen: bitgen_t,
        slices,
        wirelength: routed.wirelength,
        timing,
        bitstream,
        complexity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, Dfg, FuncId, Function, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_pivpav::{create_project, CircuitDb, NetlistCache};
    use jitise_vm::BlockKey;

    fn project_for(build: impl FnOnce(&mut FunctionBuilder)) -> CadProject {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        build(&mut b);
        let f: Function = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        create_project(&db, &cache, &f, &dfg, &cand).unwrap().0
    }

    fn small_project() -> CadProject {
        project_for(|b| {
            let x = b.add(Op::Arg(0), Op::Arg(1));
            let y = b.xor(x, Op::ci32(0x5a));
            let z = b.add(y, x);
            b.ret(z);
        })
    }

    fn complex_project() -> CadProject {
        project_for(|b| {
            let x = b.mul(Op::Arg(0), Op::Arg(1));
            let y = b.sdiv(x, Op::Arg(0));
            let z = b.mul(y, y);
            let w = b.sdiv(z, Op::Arg(1));
            b.ret(w);
        })
    }

    #[test]
    fn flow_produces_calibrated_times() {
        let fabric = Fabric::pr_region();
        let r = run_flow(&fabric, &small_project(), &FlowOptions::fast()).unwrap();
        let s = |t: SimTime| t.as_secs_f64();
        assert!((4.0..4.45).contains(&s(r.syntax)), "syntax {}", s(r.syntax));
        assert!((10.2..11.0).contains(&s(r.xst)));
        assert!((7.5..10.5).contains(&s(r.translate)));
        assert!((MAP_MIN_S * 0.9..=MAP_MAX_S * 1.1).contains(&s(r.map)));
        assert!(s(r.par) >= s(r.map) * 1.3, "PAR must exceed map");
        assert!((147.0..155.0).contains(&s(r.bitgen)));
        assert!(r.bitstream.verify());
        assert!(r.slices > 0);
        assert_eq!(
            r.total(),
            r.syntax + r.xst + r.translate + r.map + r.par + r.bitgen
        );
    }

    #[test]
    fn complex_candidates_take_longer() {
        let fabric = Fabric::pr_region();
        let small = run_flow(&fabric, &small_project(), &FlowOptions::fast()).unwrap();
        let complex = run_flow(&fabric, &complex_project(), &FlowOptions::fast()).unwrap();
        assert!(complex.complexity > small.complexity);
        assert!(complex.map > small.map);
        assert!(complex.par > small.par);
        // PAR/map ratio grows with complexity (paper: 1.4x -> 2.5x).
        let ratio_small = small.par.as_secs_f64() / small.map.as_secs_f64();
        let ratio_complex = complex.par.as_secs_f64() / complex.map.as_secs_f64();
        assert!(ratio_complex >= ratio_small);
        // Constant stages unaffected by complexity (same means).
        assert!((small.bitgen.as_secs_f64() - complex.bitgen.as_secs_f64()).abs() < 5.0);
    }

    #[test]
    fn eapr_vs_full_bitgen() {
        let fabric = Fabric::pr_region();
        let p = small_project();
        let eapr = run_flow(&fabric, &p, &FlowOptions::fast()).unwrap();
        let full = run_flow(
            &fabric,
            &p,
            &FlowOptions {
                eapr: false,
                ..FlowOptions::fast()
            },
        )
        .unwrap();
        // Paper: EAPR bitgen 151 s vs 41 s for the regular full flow.
        assert!(eapr.bitgen.as_secs_f64() > 3.0 * full.bitgen.as_secs_f64());
        assert!(!full.bitstream.partial);
        assert!(full.bitstream.len() > eapr.bitstream.len());
    }

    #[test]
    fn tool_speedup_scales_everything() {
        let fabric = Fabric::pr_region();
        let p = small_project();
        let base = run_flow(&fabric, &p, &FlowOptions::fast()).unwrap();
        let faster = run_flow(
            &fabric,
            &p,
            &FlowOptions {
                tool_speedup: 0.30,
                ..FlowOptions::fast()
            },
        )
        .unwrap();
        let expect = base.total().as_secs_f64() * 0.70;
        let got = faster.total().as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.01,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn zero_rate_injector_is_transparent() {
        use jitise_faults::{FaultInjector, FaultPlan};
        let fabric = Fabric::pr_region();
        let p = small_project();
        let plain = run_flow(&fabric, &p, &FlowOptions::fast()).unwrap();
        let zeroed = run_flow(
            &fabric,
            &p,
            &FlowOptions {
                faults: FaultInjector::from_plan(FaultPlan::uniform(0.0, 99)).scope(1, 1),
                ..FlowOptions::fast()
            },
        )
        .unwrap();
        assert_eq!(plain.bitstream, zeroed.bitstream);
        assert_eq!(plain.total(), zeroed.total());
    }

    #[test]
    fn injected_fault_charges_wasted_tool_time() {
        use jitise_faults::{FaultInjector, FaultPlan, FaultSite};
        let fabric = Fabric::pr_region();
        let p = small_project();
        let clean = run_flow(&fabric, &p, &FlowOptions::fast()).unwrap();
        // A certain map fault: flow dies after syntax+xst+translate+map.
        let plan = FaultPlan::none(3).with_rate(FaultSite::CadMap, 1.0);
        let err = run_flow_accounted(
            &fabric,
            &p,
            &FlowOptions {
                faults: FaultInjector::from_plan(plan).scope(7, 1),
                ..FlowOptions::fast()
            },
        )
        .unwrap_err();
        assert!(err.error.to_string().contains("injected"));
        assert_eq!(err.spent.map, clean.map, "map ran before dying");
        assert_eq!(
            err.spent.constant,
            clean.syntax + clean.xst + clean.translate,
            "bitgen never ran"
        );
        assert_eq!(err.spent.par, SimTime::ZERO, "PAR never started");
    }

    #[test]
    fn deterministic_end_to_end() {
        let fabric = Fabric::pr_region();
        let p = small_project();
        let a = run_flow(&fabric, &p, &FlowOptions::fast()).unwrap();
        let b = run_flow(&fabric, &p, &FlowOptions::fast()).unwrap();
        assert_eq!(a.bitstream, b.bitstream);
        assert_eq!(a.total(), b.total());
        assert_eq!(a.wirelength, b.wirelength);
    }
}
