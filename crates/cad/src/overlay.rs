//! Overlay fast-path backend: millisecond cell-assembly installation.
//!
//! The full tool flow (techmap → place → route → bitgen) models minutes of
//! CAD time per candidate — the paper's §V-D limitation. The overlay
//! literature (arXiv 1603.01187, "LUTstructions") escapes it by covering a
//! candidate datapath with *pre-implemented* coarse-grained cells whose
//! partial bitstreams were built offline: installation is then a table walk
//! plus a small ICAP transfer, at the cost of a deliberately worse clock
//! (coarse cells are generic, overlay interconnect is muxed, nothing is
//! placed for this particular datapath).
//!
//! [`OverlayLibrary::from_db`] characterizes one overlay cell per
//! `jitise-pivpav` core; [`map_overlay`] covers a [`CadProject`]'s datapath
//! with library cells and emits an [`OverlayMap`]: a CRC-framed descriptor
//! [`Bitstream`] (same byte format the ICAP controller verifies), a
//! degraded [`TimingReport`], and a millisecond-scale assembly time. The
//! pipeline installs this immediately (`InstallTier::Overlay`) and swaps in
//! the fully routed artifact (`InstallTier::Full`) when background CAD
//! completes.

use std::collections::HashMap;

use jitise_base::codec::{crc32, Encoder};
use jitise_base::{Error, Result, SimTime};
use jitise_pivpav::{CadProject, CircuitDb};

use crate::bitgen::{Bitstream, SYNC_WORD};
use crate::timing::TimingReport;

/// Which artifact backs an installed / cached CI.
///
/// Ordered so that `Full` is the "better" tier: a `Full` entry is never
/// downgraded to `Overlay`, while an `Overlay` slot is upgraded in place
/// once the background CAD flow finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InstallTier {
    /// Assembled from pre-implemented overlay cells: milliseconds to
    /// install, degraded clock (more CI cycles per execution).
    Overlay,
    /// The fully techmapped/placed/routed/bitgenned artifact.
    #[default]
    Full,
}

impl InstallTier {
    /// Stable wire encoding (cache/WAL codecs).
    pub fn encode(self) -> u32 {
        match self {
            InstallTier::Full => 0,
            InstallTier::Overlay => 1,
        }
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(v: u32) -> Result<InstallTier> {
        match v {
            0 => Ok(InstallTier::Full),
            1 => Ok(InstallTier::Overlay),
            other => Err(Error::Codec(format!("unknown install tier {other}"))),
        }
    }

    /// Human-readable name (telemetry, bench artifacts).
    pub fn name(self) -> &'static str {
        match self {
            InstallTier::Overlay => "overlay",
            InstallTier::Full => "full",
        }
    }
}

/// Per-cell delay degradation versus the core's synthesized delay: overlay
/// cells are generic (widest-operand mux trees, no carry-chain packing).
const OVERLAY_DELAY_FACTOR: f64 = 2.5;
/// Extra mux delay through a cell's input selection network, ns.
const OVERLAY_CELL_MUX_NS: f64 = 0.9;
/// Per-hop delay of the overlay's muxed interconnect, ns (the routed
/// fabric's `HOP_DELAY_NS` is 0.30 — overlay channels are ~6× slower).
const OVERLAY_HOP_NS: f64 = 1.8;

/// Fixed cost of an overlay install: descriptor setup + ICAP handshake.
const ASSEMBLE_BASE_US: u64 = 900;
/// Per-cell cost: look up the cell, patch its configuration frame.
const ASSEMBLE_PER_CELL_US: u64 = 140;
/// Per-signal cost: program one overlay interconnect route.
const ASSEMBLE_PER_SIGNAL_US: u64 = 35;

/// One pre-implemented overlay cell, characterized offline.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayCell {
    /// Core name this cell implements (`add32`, `fmul64`, …).
    pub name: String,
    /// Input-to-output delay through the overlay cell, ns (degraded
    /// versus the core's synthesized `delay_ns`).
    pub delay_ns: f64,
    /// Configuration word selecting this cell function (library index).
    pub config: u32,
    /// LUT footprint of the pre-implemented cell site.
    pub luts: u32,
}

/// The overlay cell library: one cell per `jitise-pivpav` core.
#[derive(Debug, Clone, Default)]
pub struct OverlayLibrary {
    cells: HashMap<String, OverlayCell>,
}

impl OverlayLibrary {
    /// An empty library (every mapping attempt fails — useful for
    /// exercising the full-only fallback path).
    pub fn empty() -> Self {
        OverlayLibrary::default()
    }

    /// Characterizes one overlay cell per core in `db`.
    ///
    /// Deterministic: cells are numbered in `CircuitDb::all()` order
    /// (sorted by core name), so the same database always yields the
    /// same configuration words and therefore the same descriptors.
    pub fn from_db(db: &CircuitDb) -> Self {
        let mut cells = HashMap::new();
        for (idx, core) in db.all().into_iter().enumerate() {
            let m = &core.metrics;
            cells.insert(
                core.name.clone(),
                OverlayCell {
                    name: core.name.clone(),
                    delay_ns: m.delay_ns * OVERLAY_DELAY_FACTOR + OVERLAY_CELL_MUX_NS,
                    config: idx as u32,
                    luts: m.luts,
                },
            );
        }
        OverlayLibrary { cells }
    }

    /// Looks up the overlay cell for a core name.
    pub fn cell(&self, name: &str) -> Option<&OverlayCell> {
        self.cells.get(name)
    }

    /// Number of cells in the library.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Result of covering a candidate datapath with overlay cells.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayMap {
    /// Overlay descriptor in the standard bitstream byte format (sync
    /// word, frame count, CRC-checked payload) — `Bitstream::verify()`
    /// and the ICAP controller treat it exactly like a routed partial.
    pub bitstream: Bitstream,
    /// Timing through the overlay: same arrival-time model as the full
    /// flow but with degraded cell delays and muxed-interconnect hops.
    pub timing: TimingReport,
    /// Modeled assembly latency (descriptor build + route programming);
    /// milliseconds where the full flow takes minutes.
    pub assembly_time: SimTime,
    /// Overlay cells used.
    pub cells: u32,
}

/// Covers `project`'s datapath with cells from `lib`.
///
/// Fails with `Error::Cad` if any instantiated core has no overlay cell;
/// the caller then falls back to the full-flow-only path for that
/// candidate.
pub fn map_overlay(lib: &OverlayLibrary, project: &CadProject) -> Result<OverlayMap> {
    let vhdl = &project.vhdl;

    // Cover every datapath instance; collect per-instance delays.
    let mut picked = Vec::with_capacity(vhdl.instances.len());
    for inst in &vhdl.instances {
        let cell = lib.cell(&inst.core.name).ok_or_else(|| {
            Error::Cad(format!(
                "overlay: no cell for core '{}' (instance {})",
                inst.core.name, inst.label
            ))
        })?;
        picked.push(cell);
    }

    // Arrival-time walk over the signal graph — the same relaxation as
    // `VhdlModule::critical_path_ns`, with overlay delays: every input
    // hop crosses the muxed overlay interconnect, every cell adds its
    // degraded delay.
    let mut arrival = vec![0.0f64; vhdl.num_signals as usize];
    let mut depth = vec![0u32; vhdl.num_signals as usize];
    let mut critical_path_ns: f64 = 0.0;
    let mut critical_cells = 0u32;
    for (inst, cell) in vhdl.instances.iter().zip(&picked) {
        let mut at = 0.0f64;
        let mut d = 0u32;
        for &sig in &inst.input_signals {
            let a = arrival[sig as usize] + OVERLAY_HOP_NS;
            if a > at {
                at = a;
                d = depth[sig as usize];
            }
        }
        at += cell.delay_ns;
        d += 1;
        arrival[inst.output_signal as usize] = at;
        depth[inst.output_signal as usize] = d;
        if at > critical_path_ns {
            critical_path_ns = at;
            critical_cells = d;
        }
    }
    // Output signals pay one more hop to reach the FCB register.
    for &out in &vhdl.outputs {
        let a = arrival[out as usize] + OVERLAY_HOP_NS;
        if a > critical_path_ns {
            critical_path_ns = a;
            critical_cells = depth[out as usize];
        }
    }

    let fmax_mhz = if critical_path_ns > 0.0 {
        1000.0 / critical_path_ns
    } else {
        f64::INFINITY
    };
    let timing = TimingReport {
        critical_path_ns,
        fmax_mhz,
        critical_cells,
        meets_300mhz: fmax_mhz >= 300.0,
    };

    // Descriptor payload: header, then one record per instance (config
    // word + input/output signal routes), then the output signal list.
    let mut payload = Encoder::new();
    payload.put_varu32(vhdl.num_signals);
    payload.put_varu32(vhdl.instances.len() as u32);
    for (inst, cell) in vhdl.instances.iter().zip(&picked) {
        payload.put_varu32(cell.config);
        payload.put_varu32(inst.input_signals.len() as u32);
        for &sig in &inst.input_signals {
            payload.put_varu32(sig);
        }
        payload.put_varu32(inst.output_signal);
    }
    payload.put_varu32(vhdl.outputs.len() as u32);
    for &out in &vhdl.outputs {
        payload.put_varu32(out);
    }
    for &(sig, value) in &vhdl.constants {
        payload.put_varu32(sig);
        payload.put_u64(value);
    }
    let payload = payload.finish();
    let crc = crc32(&payload);

    // One configuration frame per overlay cell (a frame carries one
    // cell's config word + route table); at least the header frame.
    let frames = (vhdl.instances.len() as u32).max(1);
    let mut out = Encoder::new();
    out.put_u64(SYNC_WORD as u64);
    out.put_varu32(frames);
    out.put_varu32(payload.len() as u32);
    out.put_bytes(&payload);
    out.put_u64(crc as u64);
    let bitstream = Bitstream {
        bytes: out.finish(),
        frames,
        crc,
        partial: true,
    };

    let cells = vhdl.instances.len() as u32;
    let signals: u64 = vhdl
        .instances
        .iter()
        .map(|i| i.input_signals.len() as u64 + 1)
        .sum();
    let micros =
        ASSEMBLE_BASE_US + ASSEMBLE_PER_CELL_US * cells as u64 + ASSEMBLE_PER_SIGNAL_US * signals;
    let assembly_time = SimTime::from_nanos(micros * 1_000);

    Ok(OverlayMap {
        bitstream,
        timing,
        assembly_time,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_ir::{BlockId, Dfg, FuncId, FunctionBuilder, Operand as Op, Type};
    use jitise_ise::ForbiddenPolicy;
    use jitise_pivpav::{create_project, NetlistCache};
    use jitise_vm::BlockKey;

    fn project_for_chain() -> CadProject {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::ci32(3));
        let z = b.xor(y, x);
        b.ret(z);
        let f = b.finish();
        let dfg = Dfg::build(&f, BlockId(0));
        let cand = jitise_ise::maxmiso(
            &f,
            &dfg,
            BlockKey::new(FuncId(0), BlockId(0)),
            &ForbiddenPolicy::default(),
            2,
        )
        .candidates
        .remove(0);
        let db = CircuitDb::build();
        let cache = NetlistCache::new();
        create_project(&db, &cache, &f, &dfg, &cand).unwrap().0
    }

    #[test]
    fn library_covers_every_db_core() {
        let db = CircuitDb::build();
        let lib = OverlayLibrary::from_db(&db);
        assert_eq!(lib.len(), db.len());
        for core in db.all() {
            let cell = lib.cell(&core.name).expect("cell for every core");
            assert!(cell.delay_ns > core.metrics.delay_ns, "{}", core.name);
        }
    }

    #[test]
    fn maps_chain_and_descriptor_verifies() {
        let lib = OverlayLibrary::from_db(&CircuitDb::build());
        let project = project_for_chain();
        let map = map_overlay(&lib, &project).unwrap();
        assert_eq!(map.cells, project.vhdl.instances.len() as u32);
        assert!(
            map.bitstream.verify(),
            "descriptor must pass ICAP CRC check"
        );
        assert!(map.bitstream.partial);
        assert!(map.bitstream.frames >= 1);
    }

    #[test]
    fn overlay_timing_is_worse_than_routed_estimate() {
        let lib = OverlayLibrary::from_db(&CircuitDb::build());
        let project = project_for_chain();
        let map = map_overlay(&lib, &project).unwrap();
        // The arrival-time walk with degraded delays must be strictly
        // slower than the same walk with synthesized core delays.
        assert!(map.timing.critical_path_ns > project.vhdl.critical_path_ns());
        assert!(map.timing.fmax_mhz < 1000.0);
        assert!(map.timing.critical_cells >= 1);
    }

    #[test]
    fn assembly_is_millisecond_scale() {
        let lib = OverlayLibrary::from_db(&CircuitDb::build());
        let project = project_for_chain();
        let map = map_overlay(&lib, &project).unwrap();
        assert!(map.assembly_time > SimTime::ZERO);
        assert!(
            map.assembly_time < SimTime::from_secs_f64(0.1),
            "assembly took {:?} — overlay must stay well under full-CAD scale",
            map.assembly_time
        );
    }

    #[test]
    fn deterministic_descriptor() {
        let lib = OverlayLibrary::from_db(&CircuitDb::build());
        let project = project_for_chain();
        let a = map_overlay(&lib, &project).unwrap();
        let b = map_overlay(&lib, &project).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_cell_fails_cleanly() {
        let lib = OverlayLibrary::empty();
        let project = project_for_chain();
        let err = map_overlay(&lib, &project).unwrap_err();
        assert!(matches!(err, Error::Cad(_)), "{err}");
    }

    #[test]
    fn tier_codec_roundtrip() {
        for tier in [InstallTier::Overlay, InstallTier::Full] {
            assert_eq!(InstallTier::decode(tier.encode()).unwrap(), tier);
        }
        assert!(InstallTier::decode(7).is_err());
        assert_eq!(InstallTier::default(), InstallTier::Full);
        assert_eq!(InstallTier::Overlay.name(), "overlay");
    }
}
