//! Static timing analysis over the placed-and-routed design.
//!
//! Computes the worst-case combinational path delay: cell intrinsic delays
//! plus per-edge routing delays along each net's tree. Reports the design's
//! achievable clock frequency — the number Woolcano uses to clock a loaded
//! custom instruction.

use crate::fabric::Fabric;
use crate::place::Placement;
use crate::route::RoutedDesign;
use jitise_pivpav::{CellKind, Netlist};

/// Per-primitive intrinsic delays (ns), Virtex-4 -10 speed-grade class.
pub fn cell_delay_ns(kind: CellKind) -> f64 {
    match kind {
        CellKind::Lut4 { .. } => 0.40,
        CellKind::Carry => 0.06,
        CellKind::Ff => 0.45, // clk-to-q
        CellKind::Dsp48 => 2.30,
        CellKind::IBuf | CellKind::OBuf => 0.80,
    }
}

/// Routing delay per tile-to-tile hop (ns).
pub const HOP_DELAY_NS: f64 = 0.30;

/// Timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst combinational path (ns).
    pub critical_path_ns: f64,
    /// Achievable clock (MHz), assuming registered boundaries.
    pub fmax_mhz: f64,
    /// Number of cells on the critical path.
    pub critical_cells: u32,
    /// Whether the design meets the Woolcano CI clock (300 MHz ⇒ the CI
    /// executes single-cycle; otherwise the interface inserts wait states).
    pub meets_300mhz: bool,
}

/// Runs STA.
///
/// The traversal processes cells in topological order of the net graph; a
/// cyclic alias (possible in degenerate netlists) is broken by bounding the
/// relaxation passes.
pub fn analyze(
    fabric: &Fabric,
    nl: &Netlist,
    placement: &Placement,
    routed: &RoutedDesign,
) -> TimingReport {
    // Wire delay of a net = hops in its tree (shared-tree approximation).
    let net_delay: Vec<f64> = routed
        .nets
        .iter()
        .map(|n| n.edges.len() as f64 * HOP_DELAY_NS)
        .collect();
    let _ = (fabric, placement);

    // arrival[net] = worst arrival at that net's driver output.
    let mut arrival = vec![0.0f64; nl.num_nets as usize];
    let mut depth = vec![0u32; nl.num_nets as usize];

    // Bounded relaxation (2 passes suffice for DAGs in emission order; a
    // few more make the result stable even for odd orders).
    let mut worst = 0.0f64;
    let mut worst_depth = 0u32;
    for _ in 0..4 {
        let mut changed = false;
        for c in &nl.cells {
            // FFs are sequential: they start a new path.
            let (input_at, input_depth) = if c.kind == CellKind::Ff {
                (0.0, 0)
            } else {
                let mut at = 0.0f64;
                let mut d = 0u32;
                for &i in &c.inputs {
                    let wire = net_delay.get(i as usize).copied().unwrap_or(0.0);
                    if arrival[i as usize] + wire > at {
                        at = arrival[i as usize] + wire;
                        d = depth[i as usize];
                    }
                }
                (at, d)
            };
            let out_at = input_at + cell_delay_ns(c.kind);
            let out_depth = input_depth + 1;
            if out_at > arrival[c.output as usize] + 1e-12 {
                arrival[c.output as usize] = out_at;
                depth[c.output as usize] = out_depth;
                changed = true;
            }
            if out_at > worst {
                worst = out_at;
                worst_depth = out_depth;
            }
        }
        if !changed {
            break;
        }
    }

    let critical = worst.max(cell_delay_ns(CellKind::Lut4 { mask: 0 }));
    let fmax = 1_000.0 / critical;
    TimingReport {
        critical_path_ns: critical,
        fmax_mhz: fmax,
        critical_cells: worst_depth,
        meets_300mhz: fmax >= 300.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlaceEffort};
    use crate::route::{route, RouteEffort};
    use jitise_pivpav::netlist::synthesize_core;

    fn timing_for(luts: u32, ffs: u32, dsps: u32) -> TimingReport {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("t", 8, luts, ffs, dsps, 23);
        let p = place(&fabric, &nl, PlaceEffort::fast(), 3).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::fast()).unwrap();
        analyze(&fabric, &nl, &p, &r)
    }

    #[test]
    fn reports_positive_critical_path() {
        let t = timing_for(60, 8, 2);
        assert!(t.critical_path_ns > 0.0);
        assert!(t.fmax_mhz > 0.0);
        assert!(t.critical_cells >= 1);
        assert!((t.fmax_mhz - 1_000.0 / t.critical_path_ns).abs() < 1e-9);
    }

    #[test]
    fn bigger_designs_are_slower() {
        let small = timing_for(20, 0, 0);
        let big = timing_for(250, 0, 4);
        assert!(
            big.critical_path_ns > small.critical_path_ns,
            "{} vs {}",
            big.critical_path_ns,
            small.critical_path_ns
        );
    }

    #[test]
    fn dsp_delay_dominates_luts() {
        assert!(cell_delay_ns(CellKind::Dsp48) > 5.0 * cell_delay_ns(CellKind::Lut4 { mask: 0 }));
    }

    #[test]
    fn ff_breaks_combinational_paths() {
        // A pure-FF netlist has minimal critical path (single clk-q + wire).
        let fabric = Fabric::pr_region();
        let mut nl = jitise_pivpav::Netlist::new("ffchain");
        let a = nl.add_input("a", 1);
        let mut prev = a[0];
        for _ in 0..10 {
            prev = nl.add_cell(CellKind::Ff, vec![prev]);
        }
        nl.add_output("y", vec![prev]);
        let p = place(&fabric, &nl, PlaceEffort::fast(), 1).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::fast()).unwrap();
        let t = analyze(&fabric, &nl, &p, &r);
        assert!(
            t.critical_path_ns < 2.0,
            "FF chain must not accumulate: {}",
            t.critical_path_ns
        );
    }
}
