//! Deficit-round-robin fair dispatch of CAD jobs across tenants.
//!
//! The serve runtime (DESIGN.md §16) shares one bounded CAD worker pool
//! between every admitted tenant. A plain FIFO over the pool lets one
//! tenant with many heavy candidates starve everyone else, so pool
//! *timing* is modeled with deficit round robin (Shreedhar & Varghese):
//! each tenant keeps a FIFO of jobs and a deficit counter; the
//! dispatcher walks the active tenants in tenant-id order, tops the
//! visited tenant's deficit up by one quantum, and dispatches its head
//! job once the deficit covers the job's charge.
//!
//! **Starvation freedom.** Every visit adds a full quantum, so a job at
//! the head of its tenant's queue is dispatched after at most
//! `ceil(charge / quantum)` visits — the bound is per-job and
//! independent of how much work *other* tenants have queued. The
//! dispatcher records the number of passed-over visits per job
//! ([`DispatchedJob::rounds_waited`], strictly less than the bound) and
//! the serve proptests assert it under random tenant mixes.
//!
//! The simulation is purely a function of the job list and the config:
//! lanes become free in (time, lane-index) order, ties in tenant
//! selection resolve by tenant id, and all times are [`SimTime`] — no
//! host clocks anywhere. The serve runtime runs it as a *post-pass* over
//! charges recorded by the (lane-invariant) execution layer, so its
//! outputs feed wall-clock-style fleet metrics without ever touching
//! the result fingerprint.

use jitise_base::SimTime;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One CAD job as the fair dispatcher sees it: who queued it, how much
/// simulated tool time it charges a lane, and when it became ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolJob {
    /// Owning tenant (ring position is tenant-id order).
    pub tenant: u64,
    /// Simulated lane occupancy of the job (tool time incl. retries).
    pub charge: SimTime,
    /// Earliest dispatch time (the tenant's admission time).
    pub ready_at: SimTime,
}

/// Dispatcher knobs.
#[derive(Debug, Clone, Copy)]
pub struct DrrConfig {
    /// Pool width: number of identical CAD lanes.
    pub lanes: usize,
    /// Deficit added per visit. Smaller quanta interleave tenants more
    /// finely but raise the per-job round bound `ceil(charge/quantum)`.
    pub quantum: SimTime,
}

impl Default for DrrConfig {
    fn default() -> Self {
        DrrConfig {
            lanes: 1,
            quantum: SimTime::from_secs(60),
        }
    }
}

/// One dispatched job with its simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchedJob {
    /// Index of the job in the input slice.
    pub job: usize,
    /// Owning tenant (copied from the input for convenience).
    pub tenant: u64,
    /// Lane the job ran on.
    pub lane: usize,
    /// Dispatch time (lane becomes busy).
    pub start: SimTime,
    /// Completion time (`start + charge`).
    pub finish: SimTime,
    /// Number of times the dispatcher visited this job at the head of
    /// its tenant's queue and passed it over. Strictly less than
    /// `ceil(charge / quantum)` — the starvation-freedom bound.
    pub rounds_waited: u32,
}

/// The full simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Every input job, in dispatch order.
    pub dispatched: Vec<DispatchedJob>,
    /// Latest completion time across all lanes.
    pub makespan: SimTime,
    /// Largest number of ready-but-undispatched jobs observed at any
    /// dispatch decision (the pool backlog a fleet dashboard would
    /// report as queue depth).
    pub max_queue_depth: usize,
}

impl DispatchOutcome {
    /// Completion schedule keyed by input index (finish time per job).
    pub fn finish_by_job(&self) -> BTreeMap<usize, SimTime> {
        self.dispatched.iter().map(|d| (d.job, d.finish)).collect()
    }
}

/// The per-job starvation bound: visits needed before the accumulated
/// deficit covers `charge` (at least 1; `quantum` must be non-zero).
pub fn round_bound(charge: SimTime, quantum: SimTime) -> u32 {
    let q = quantum.as_nanos().max(1);
    let c = charge.as_nanos();
    (c.div_ceil(q)).max(1) as u32
}

struct TenantQueue {
    jobs: VecDeque<usize>,
    deficit: u64,
}

/// Simulates deficit-round-robin dispatch of `jobs` over
/// `config.lanes` identical lanes. Deterministic: output depends only
/// on the inputs. Panics if `config.lanes == 0` or
/// `config.quantum == SimTime::ZERO` (both are configuration bugs, not
/// load conditions).
pub fn drr_dispatch(jobs: &[PoolJob], config: &DrrConfig) -> DispatchOutcome {
    assert!(config.lanes > 0, "drr_dispatch needs at least one lane");
    assert!(
        config.quantum > SimTime::ZERO,
        "drr_dispatch needs a non-zero quantum"
    );
    let quantum = config.quantum.as_nanos();

    // Per-tenant FIFO queues in input order; BTreeMap gives the
    // deterministic tenant-id ring.
    let mut queues: BTreeMap<u64, TenantQueue> = BTreeMap::new();
    for (idx, job) in jobs.iter().enumerate() {
        queues
            .entry(job.tenant)
            .or_insert_with(|| TenantQueue {
                jobs: VecDeque::new(),
                deficit: 0,
            })
            .jobs
            .push_back(idx);
    }

    let mut waited = vec![0u32; jobs.len()];
    let mut lane_free = vec![SimTime::ZERO; config.lanes];
    let mut dispatched = Vec::with_capacity(jobs.len());
    let mut remaining = jobs.len();
    let mut max_queue_depth = 0usize;
    // Ring cursor: the tenant id the next walk starts from.
    let mut cursor: Option<u64> = None;

    while remaining > 0 {
        // Earliest-free lane, lowest index on ties.
        let lane = (0..config.lanes)
            .min_by_key(|&l| (lane_free[l], l))
            .expect("at least one lane");
        let mut now = lane_free[lane];

        // If nothing is ready yet, advance this lane to the earliest
        // readiness among undispatched jobs.
        let earliest_ready = queues
            .values()
            .filter_map(|q| q.jobs.front().map(|&i| jobs[i].ready_at))
            .min()
            .expect("remaining > 0 implies a queued job");
        if earliest_ready > now {
            now = earliest_ready;
        }

        let ready_depth: usize = queues
            .values()
            .flat_map(|q| q.jobs.iter())
            .filter(|&&i| jobs[i].ready_at <= now)
            .count();
        max_queue_depth = max_queue_depth.max(ready_depth);

        // Walk the ring of tenants whose head job is ready, starting at
        // the cursor, until one dispatches. Each visit adds a quantum,
        // so the walk terminates within round_bound() laps.
        let ring: Vec<u64> = queues
            .iter()
            .filter(|(_, q)| q.jobs.front().is_some_and(|&i| jobs[i].ready_at <= now))
            .map(|(&t, _)| t)
            .collect();
        debug_assert!(!ring.is_empty(), "a ready job exists at `now`");
        let start_pos = match cursor {
            Some(c) => ring.iter().position(|&t| t >= c).unwrap_or(0),
            None => 0,
        };
        let mut pos = start_pos;
        loop {
            let tenant = ring[pos];
            let q = queues.get_mut(&tenant).expect("ring tenant exists");
            q.deficit += quantum;
            let head = *q.jobs.front().expect("ring tenant has a head job");
            let charge = jobs[head].charge.as_nanos();
            if q.deficit >= charge {
                q.deficit -= charge;
                q.jobs.pop_front();
                // Standard DRR: an emptied queue forfeits its deficit,
                // so idle tenants cannot bank credit.
                if q.jobs.is_empty() {
                    q.deficit = 0;
                    queues.remove(&tenant);
                }
                let start = now;
                let finish = start + jobs[head].charge;
                lane_free[lane] = finish;
                dispatched.push(DispatchedJob {
                    job: head,
                    tenant,
                    lane,
                    start,
                    finish,
                    rounds_waited: waited[head],
                });
                remaining -= 1;
                // Resume the next walk after this tenant.
                cursor = Some(tenant + 1);
                break;
            }
            waited[head] += 1;
            pos = (pos + 1) % ring.len();
        }
    }

    let makespan = dispatched
        .iter()
        .map(|d| d.finish)
        .max()
        .unwrap_or(SimTime::ZERO);
    DispatchOutcome {
        dispatched,
        makespan,
        max_queue_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: u64, charge_s: u64) -> PoolJob {
        PoolJob {
            tenant,
            charge: SimTime::from_secs(charge_s),
            ready_at: SimTime::ZERO,
        }
    }

    #[test]
    fn single_tenant_is_fifo() {
        let jobs = vec![job(7, 100), job(7, 50), job(7, 10)];
        let out = drr_dispatch(&jobs, &DrrConfig::default());
        let order: Vec<usize> = out.dispatched.iter().map(|d| d.job).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(out.makespan, SimTime::from_secs(160));
    }

    #[test]
    fn heavy_tenant_cannot_starve_light_tenant() {
        // Tenant 1 queues ten heavy jobs before tenant 2's single light
        // job; DRR must dispatch tenant 2 long before tenant 1 drains.
        let mut jobs: Vec<PoolJob> = (0..10).map(|_| job(1, 600)).collect();
        jobs.push(job(2, 60));
        let cfg = DrrConfig {
            lanes: 1,
            quantum: SimTime::from_secs(60),
        };
        let out = drr_dispatch(&jobs, &cfg);
        let light = out.dispatched.iter().find(|d| d.tenant == 2).unwrap();
        // The light job waits for at most one heavy job, not ten.
        assert!(light.start <= SimTime::from_secs(600), "{:?}", light);
        assert!(light.rounds_waited < round_bound(jobs[10].charge, cfg.quantum));
    }

    #[test]
    fn rounds_waited_respects_the_bound() {
        let cfg = DrrConfig {
            lanes: 2,
            quantum: SimTime::from_secs(30),
        };
        let jobs = vec![
            job(1, 300),
            job(2, 45),
            job(3, 700),
            job(1, 10),
            job(2, 90),
            job(3, 31),
        ];
        let out = drr_dispatch(&jobs, &cfg);
        assert_eq!(out.dispatched.len(), jobs.len());
        for d in &out.dispatched {
            assert!(
                d.rounds_waited < round_bound(jobs[d.job].charge, cfg.quantum),
                "job {} waited {} rounds, bound {}",
                d.job,
                d.rounds_waited,
                round_bound(jobs[d.job].charge, cfg.quantum)
            );
        }
    }

    #[test]
    fn ready_at_defers_dispatch() {
        let jobs = vec![
            PoolJob {
                tenant: 1,
                charge: SimTime::from_secs(10),
                ready_at: SimTime::from_secs(100),
            },
            PoolJob {
                tenant: 2,
                charge: SimTime::from_secs(10),
                ready_at: SimTime::ZERO,
            },
        ];
        let out = drr_dispatch(&jobs, &DrrConfig::default());
        assert_eq!(out.dispatched[0].job, 1);
        assert_eq!(out.dispatched[0].start, SimTime::ZERO);
        assert_eq!(out.dispatched[1].job, 0);
        assert_eq!(out.dispatched[1].start, SimTime::from_secs(100));
    }

    #[test]
    fn deterministic_and_lane_bounded() {
        let jobs: Vec<PoolJob> = (0..40)
            .map(|i| PoolJob {
                tenant: i % 7,
                charge: SimTime::from_secs(20 + (i * 13) % 200),
                ready_at: SimTime::from_secs(i * 3),
            })
            .collect();
        let cfg = DrrConfig {
            lanes: 3,
            quantum: SimTime::from_secs(45),
        };
        let a = drr_dispatch(&jobs, &cfg);
        let b = drr_dispatch(&jobs, &cfg);
        assert_eq!(a, b);
        // No lane ever runs two jobs at once.
        for lane in 0..cfg.lanes {
            let mut spans: Vec<(SimTime, SimTime)> = a
                .dispatched
                .iter()
                .filter(|d| d.lane == lane)
                .map(|d| (d.start, d.finish))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap on lane {lane}: {w:?}");
            }
        }
        // Wider pools never lengthen the makespan on this workload.
        let narrow = drr_dispatch(
            &jobs,
            &DrrConfig {
                lanes: 1,
                quantum: cfg.quantum,
            },
        );
        assert!(a.makespan <= narrow.makespan);
    }

    #[test]
    #[should_panic(expected = "non-zero quantum")]
    fn zero_quantum_is_a_config_bug() {
        drr_dispatch(
            &[job(1, 5)],
            &DrrConfig {
                lanes: 1,
                quantum: SimTime::ZERO,
            },
        );
    }
}
