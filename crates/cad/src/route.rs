//! Routing (the PAR stage's second half).
//!
//! A negotiated-congestion maze router in the PathFinder tradition: each
//! net is routed as a BFS tree over the tile grid; edges (routing channels)
//! have a capacity, and overuse raises an edge's cost on the next
//! iteration until every channel is legal or the iteration budget runs
//! out.

use crate::fabric::Fabric;
use crate::place::Placement;
use jitise_base::{Error, Result};
use jitise_pivpav::Netlist;
use std::collections::VecDeque;

/// One routed net: the set of edges its tree occupies.
#[derive(Debug, Clone, Default)]
pub struct RoutedNet {
    /// Edge ids of the routing tree.
    pub edges: Vec<u32>,
    /// Tiles spanned (terminals + Steiner points).
    pub tiles: Vec<u32>,
}

/// The routing result.
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    /// One route per net (index = net id; unused nets empty).
    pub nets: Vec<RoutedNet>,
    /// Total wirelength in edges.
    pub wirelength: u64,
    /// Channels still over capacity after the final iteration (0 = legal).
    pub overflow: u32,
    /// Negotiation iterations used.
    pub iterations: u32,
    /// Peak channel occupancy.
    pub max_occupancy: u32,
}

/// Router effort.
#[derive(Debug, Clone, Copy)]
pub struct RouteEffort {
    /// Maximum negotiation iterations.
    pub max_iterations: u32,
}

impl RouteEffort {
    /// Default effort.
    pub fn normal() -> Self {
        RouteEffort { max_iterations: 8 }
    }

    /// Bulk-experiment effort.
    pub fn fast() -> Self {
        RouteEffort { max_iterations: 3 }
    }
}

/// Terminal tiles of every net (driver + sinks + fixed port pins).
fn net_terminals(fabric: &Fabric, nl: &Netlist, placement: &Placement) -> Vec<Vec<u32>> {
    let mut terminals = vec![Vec::new(); nl.num_nets as usize];
    for (i, c) in nl.cells.iter().enumerate() {
        let t = placement.cell_tile[i];
        terminals[c.output as usize].push(t);
        for &inp in &c.inputs {
            terminals[inp as usize].push(t);
        }
    }
    let mut in_row = 0u32;
    let mut out_row = 0u32;
    for p in &nl.ports {
        for &net in &p.nets {
            match p.dir {
                jitise_pivpav::PortDir::In => {
                    terminals[net as usize].push(fabric.tile_at(0, in_row % fabric.height));
                    in_row += 1;
                }
                jitise_pivpav::PortDir::Out => {
                    terminals[net as usize]
                        .push(fabric.tile_at(fabric.width - 1, out_row % fabric.height));
                    out_row += 1;
                }
            }
        }
    }
    for t in terminals.iter_mut() {
        t.sort_unstable();
        t.dedup();
    }
    terminals
}

/// Routes one net as a BFS-grown Steiner tree under the given edge costs.
fn route_net(fabric: &Fabric, terminals: &[u32], cost: &[f64]) -> RoutedNet {
    let mut out = RoutedNet::default();
    if terminals.len() < 2 {
        out.tiles = terminals.to_vec();
        return out;
    }
    // Grow a tree: start from the first terminal; repeatedly run a BFS
    // (uniform-cost search) from the current tree to the nearest
    // unconnected terminal.
    let mut in_tree = vec![false; fabric.num_tiles() as usize];
    in_tree[terminals[0] as usize] = true;
    out.tiles.push(terminals[0]);
    let mut remaining: Vec<u32> = terminals[1..].to_vec();

    while !remaining.is_empty() {
        // Dijkstra from all tree tiles simultaneously.
        let n = fabric.num_tiles() as usize;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            Default::default();
        for t in 0..n {
            if in_tree[t] {
                dist[t] = 0.0;
                heap.push(std::cmp::Reverse((0, t as u32)));
            }
        }
        let key = |d: f64| (d * 1024.0) as u64;
        let mut reached: Option<u32> = None;
        while let Some(std::cmp::Reverse((dk, tile))) = heap.pop() {
            if dk > key(dist[tile as usize]) {
                continue;
            }
            if remaining.contains(&tile) {
                reached = Some(tile);
                break;
            }
            for nb in fabric.neighbors(tile) {
                let e = fabric.edge_id(tile, nb);
                let nd = dist[tile as usize] + cost[e as usize];
                if nd < dist[nb as usize] {
                    dist[nb as usize] = nd;
                    prev[nb as usize] = tile;
                    heap.push(std::cmp::Reverse((key(nd), nb)));
                }
            }
        }
        let target = match reached {
            Some(t) => t,
            None => break, // disconnected (cannot happen on a grid)
        };
        // Trace back into the tree.
        let mut cur = target;
        while !in_tree[cur as usize] {
            in_tree[cur as usize] = true;
            out.tiles.push(cur);
            let p = prev[cur as usize];
            if p == u32::MAX {
                break;
            }
            out.edges.push(fabric.edge_id(cur, p));
            cur = p;
        }
        remaining.retain(|&t| t != target);
    }
    out
}

/// Routes every net of a placed design.
pub fn route(
    fabric: &Fabric,
    nl: &Netlist,
    placement: &Placement,
    effort: RouteEffort,
) -> Result<RoutedDesign> {
    if placement.cell_tile.len() != nl.cells.len() {
        return Err(Error::Cad("placement does not match netlist".into()));
    }
    let terminals = net_terminals(fabric, nl, placement);
    let num_edges = fabric.num_edges() as usize;
    let mut history = vec![0.0f64; num_edges];
    let mut result_nets: Vec<RoutedNet> = vec![RoutedNet::default(); nl.num_nets as usize];
    let mut iterations = 0;
    let mut overflow = 0;
    let mut max_occ = 0;

    for iter in 0..effort.max_iterations {
        iterations = iter + 1;
        let mut occupancy = vec![0u32; num_edges];
        // Edge cost: base 1 + congestion history + current-use pressure.
        for (net, terms) in terminals.iter().enumerate() {
            if terms.len() < 2 {
                result_nets[net] = RoutedNet {
                    edges: vec![],
                    tiles: terms.clone(),
                };
                continue;
            }
            let cost: Vec<f64> = (0..num_edges)
                .map(|e| {
                    let over = occupancy[e].saturating_sub(fabric.channel_width) as f64;
                    1.0 + history[e] + 4.0 * over
                })
                .collect();
            let routed = route_net(fabric, terms, &cost);
            for &e in &routed.edges {
                occupancy[e as usize] += 1;
            }
            result_nets[net] = routed;
        }
        overflow = occupancy
            .iter()
            .filter(|&&o| o > fabric.channel_width)
            .count() as u32;
        max_occ = occupancy.iter().copied().max().unwrap_or(0);
        if overflow == 0 {
            break;
        }
        // Penalize congested edges for the next iteration.
        for (e, &o) in occupancy.iter().enumerate() {
            if o > fabric.channel_width {
                history[e] += (o - fabric.channel_width) as f64 * 0.8;
            }
        }
    }

    let wirelength = result_nets.iter().map(|n| n.edges.len() as u64).sum();
    Ok(RoutedDesign {
        nets: result_nets,
        wirelength,
        overflow,
        iterations,
        max_occupancy: max_occ,
    })
}

/// Verifies that every multi-terminal net's tree actually connects all its
/// terminals (used by tests and the flow's assertions).
pub fn check_connected(
    fabric: &Fabric,
    nl: &Netlist,
    placement: &Placement,
    routed: &RoutedDesign,
) -> Result<()> {
    let terminals = net_terminals(fabric, nl, placement);
    for (net, terms) in terminals.iter().enumerate() {
        if terms.len() < 2 {
            continue;
        }
        let tree = &routed.nets[net];
        for t in terms {
            if !tree.tiles.contains(t) {
                return Err(Error::Cad(format!(
                    "net {net}: terminal tile {t} not in routing tree"
                )));
            }
        }
        // Tree connectivity: edges + tiles must form a connected graph
        // over the tile set.
        let tiles = &tree.tiles;
        if tiles.is_empty() {
            continue;
        }
        let mut adj: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for &t in tiles {
            adj.entry(t).or_default();
        }
        for &t in tiles {
            for nb in fabric.neighbors(t) {
                if tiles.contains(&nb) && tree.edges.contains(&fabric.edge_id(t, nb)) {
                    adj.entry(t).or_default().push(nb);
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut q = VecDeque::new();
        q.push_back(tiles[0]);
        seen.insert(tiles[0]);
        while let Some(t) = q.pop_front() {
            for &nb in adj.get(&t).into_iter().flatten() {
                if seen.insert(nb) {
                    q.push_back(nb);
                }
            }
        }
        for t in terms {
            if !seen.contains(t) {
                return Err(Error::Cad(format!(
                    "net {net}: terminal {t} disconnected from tree root"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlaceEffort};
    use jitise_pivpav::netlist::synthesize_core;

    fn routed_fixture(luts: u32) -> (Fabric, Netlist, Placement, RoutedDesign) {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("r", 8, luts, 8, 2, 17);
        let p = place(&fabric, &nl, PlaceEffort::fast(), 3).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::normal()).unwrap();
        (fabric, nl, p, r)
    }

    #[test]
    fn routes_connect_all_terminals() {
        let (fabric, nl, p, r) = routed_fixture(60);
        check_connected(&fabric, &nl, &p, &r).unwrap();
        assert!(r.wirelength > 0);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn no_overflow_on_comfortable_design() {
        let (_, _, _, r) = routed_fixture(40);
        assert_eq!(r.overflow, 0, "small design must route legally");
    }

    #[test]
    fn wirelength_grows_with_design_size() {
        let (_, _, _, small) = routed_fixture(30);
        let (_, _, _, big) = routed_fixture(200);
        assert!(
            big.wirelength > small.wirelength,
            "bigger design, more wire: {} vs {}",
            big.wirelength,
            small.wirelength
        );
    }

    #[test]
    fn deterministic() {
        let (fabric, nl, p, r1) = routed_fixture(50);
        let r2 = route(&fabric, &nl, &p, RouteEffort::normal()).unwrap();
        assert_eq!(r1.wirelength, r2.wirelength);
        assert_eq!(r1.overflow, r2.overflow);
    }

    #[test]
    fn single_terminal_nets_trivial() {
        let fabric = Fabric::tiny();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1);
        // One cell consuming a; its output goes nowhere.
        nl.add_cell(jitise_pivpav::CellKind::Lut4 { mask: 3 }, vec![a[0]]);
        let p = place(&fabric, &nl, PlaceEffort::fast(), 1).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::fast()).unwrap();
        check_connected(&fabric, &nl, &p, &r).unwrap();
        // Output net has a single terminal -> no edges.
        assert!(r.nets[1].edges.is_empty());
    }
}
