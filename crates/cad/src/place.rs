//! Placement (the Map/PAR stage's first half).
//!
//! Simulated-annealing placement of the flat netlist onto the fabric's PR
//! region: every cell is assigned a tile whose site kind matches, tile
//! capacities are respected, and the cost is the half-perimeter wirelength
//! (HPWL) over all nets — the classic VPR formulation.

use crate::fabric::{Fabric, SiteKind};
use jitise_base::rng::XorShift128Plus;
use jitise_base::{Error, Result};
use jitise_pivpav::{CellKind, Netlist};

/// A legal placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Tile of each cell (index parallel to `netlist.cells`).
    pub cell_tile: Vec<u32>,
    /// Final HPWL.
    pub hpwl: u64,
    /// Moves attempted by the annealer.
    pub moves: u64,
    /// Moves accepted.
    pub accepted: u64,
}

/// Annealing effort.
#[derive(Debug, Clone, Copy)]
pub struct PlaceEffort {
    /// Moves per temperature step.
    pub moves_per_temp: u32,
    /// Temperature steps.
    pub temp_steps: u32,
}

impl PlaceEffort {
    /// Default effort for the tool flow.
    pub fn normal() -> Self {
        PlaceEffort {
            moves_per_temp: 600,
            temp_steps: 24,
        }
    }

    /// Reduced effort for bulk experiments.
    pub fn fast() -> Self {
        PlaceEffort {
            moves_per_temp: 150,
            temp_steps: 10,
        }
    }
}

fn required_site(kind: CellKind) -> SiteKind {
    match kind {
        CellKind::Dsp48 => SiteKind::Dsp,
        _ => SiteKind::Logic,
    }
}

/// Net → cells map plus the port-to-tile pins (module ports pinned to the
/// fabric edge, where the bus macros sit in a real PR design).
struct NetPins {
    /// For each net: cell indices touching it.
    net_cells: Vec<Vec<u32>>,
    /// For each net: fixed pin tiles (from module ports).
    net_fixed: Vec<Vec<u32>>,
}

fn build_pins(fabric: &Fabric, nl: &Netlist) -> NetPins {
    let n = nl.num_nets as usize;
    let mut net_cells = vec![Vec::new(); n];
    let mut net_fixed = vec![Vec::new(); n];
    for (i, c) in nl.cells.iter().enumerate() {
        net_cells[c.output as usize].push(i as u32);
        for &inp in &c.inputs {
            net_cells[inp as usize].push(i as u32);
        }
    }
    // Ports pin to the west (inputs) / east (outputs) fabric edge, spread
    // over rows.
    let mut in_row = 0u32;
    let mut out_row = 0u32;
    for p in &nl.ports {
        for &net in &p.nets {
            match p.dir {
                jitise_pivpav::PortDir::In => {
                    net_fixed[net as usize].push(fabric.tile_at(0, in_row % fabric.height));
                    in_row += 1;
                }
                jitise_pivpav::PortDir::Out => {
                    net_fixed[net as usize]
                        .push(fabric.tile_at(fabric.width - 1, out_row % fabric.height));
                    out_row += 1;
                }
            }
        }
    }
    for cells in net_cells.iter_mut() {
        cells.dedup();
    }
    NetPins {
        net_cells,
        net_fixed,
    }
}

fn net_hpwl(fabric: &Fabric, pins: &NetPins, placement: &[u32], net: usize) -> u64 {
    let mut min_x = u32::MAX;
    let mut max_x = 0;
    let mut min_y = u32::MAX;
    let mut max_y = 0;
    let mut any = false;
    let mut consider = |tile: u32| {
        let (x, y) = fabric.xy(tile);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
        any = true;
    };
    for &c in &pins.net_cells[net] {
        consider(placement[c as usize]);
    }
    for &t in &pins.net_fixed[net] {
        consider(t);
    }
    if !any {
        return 0;
    }
    ((max_x - min_x) + (max_y - min_y)) as u64
}

fn total_hpwl(fabric: &Fabric, pins: &NetPins, placement: &[u32]) -> u64 {
    (0..pins.net_cells.len())
        .map(|n| net_hpwl(fabric, pins, placement, n))
        .sum()
}

/// Places `nl` on `fabric` with simulated annealing.
///
/// Fails with [`Error::Cad`] if the design does not fit (cell counts exceed
/// site capacities).
pub fn place(fabric: &Fabric, nl: &Netlist, effort: PlaceEffort, seed: u64) -> Result<Placement> {
    // Capacity feasibility.
    let logic_cells = nl
        .cells
        .iter()
        .filter(|c| c.kind != CellKind::Dsp48)
        .count() as u32;
    let dsp_cells = nl.dsp_count() as u32;
    if logic_cells > fabric.total_logic_sites() {
        return Err(Error::Cad(format!(
            "design does not fit: {logic_cells} logic cells > {} sites",
            fabric.total_logic_sites()
        )));
    }
    if dsp_cells > fabric.total_dsp_sites() {
        return Err(Error::Cad(format!(
            "design does not fit: {dsp_cells} DSP cells > {} sites",
            fabric.total_dsp_sites()
        )));
    }

    let mut rng = XorShift128Plus::new(seed);
    let pins = build_pins(fabric, nl);

    // Initial placement: round-robin over matching tiles.
    let mut occupancy = vec![0u32; fabric.num_tiles() as usize];
    let logic_tiles: Vec<u32> = (0..fabric.num_tiles())
        .filter(|&t| fabric.site_kind(t) == SiteKind::Logic)
        .collect();
    let dsp_tiles: Vec<u32> = (0..fabric.num_tiles())
        .filter(|&t| fabric.site_kind(t) == SiteKind::Dsp)
        .collect();
    let mut placement = vec![0u32; nl.cells.len()];
    let mut li = 0usize;
    let mut di = 0usize;
    for (i, c) in nl.cells.iter().enumerate() {
        let pool = if required_site(c.kind) == SiteKind::Dsp {
            &dsp_tiles
        } else {
            &logic_tiles
        };
        let start = if required_site(c.kind) == SiteKind::Dsp {
            &mut di
        } else {
            &mut li
        };
        // Find the next tile with free capacity.
        let mut placed = false;
        for _ in 0..pool.len() {
            let t = pool[*start % pool.len()];
            *start += 1;
            if occupancy[t as usize] < fabric.capacity(t) {
                occupancy[t as usize] += 1;
                placement[i] = t;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(Error::Cad("initial placement failed (no free site)".into()));
        }
    }

    // Annealing.
    let mut cost = total_hpwl(fabric, &pins, &placement);
    let mut temp = (cost as f64 / pins.net_cells.len().max(1) as f64).max(1.0);
    let mut moves = 0u64;
    let mut accepted = 0u64;

    // Nets touched by a cell, for incremental cost evaluation.
    let mut cell_nets: Vec<Vec<u32>> = vec![Vec::new(); nl.cells.len()];
    for (net, cells) in pins.net_cells.iter().enumerate() {
        for &c in cells {
            cell_nets[c as usize].push(net as u32);
        }
    }

    for _ in 0..effort.temp_steps {
        for _ in 0..effort.moves_per_temp {
            if nl.cells.is_empty() {
                break;
            }
            moves += 1;
            let cell = rng.next_index(nl.cells.len());
            let kind = required_site(nl.cells[cell].kind);
            let pool = if kind == SiteKind::Dsp {
                &dsp_tiles
            } else {
                &logic_tiles
            };
            let target = pool[rng.next_index(pool.len())];
            let from = placement[cell];
            if target == from {
                continue;
            }
            if occupancy[target as usize] >= fabric.capacity(target) {
                continue; // site full (cell swaps omitted for simplicity)
            }
            // Incremental delta over the cell's nets.
            let before: u64 = cell_nets[cell]
                .iter()
                .map(|&n| net_hpwl(fabric, &pins, &placement, n as usize))
                .sum();
            placement[cell] = target;
            let after: u64 = cell_nets[cell]
                .iter()
                .map(|&n| net_hpwl(fabric, &pins, &placement, n as usize))
                .sum();
            let delta = after as i64 - before as i64;
            let accept = delta <= 0 || rng.next_f64() < (-(delta as f64) / temp).exp();
            if accept {
                occupancy[from as usize] -= 1;
                occupancy[target as usize] += 1;
                cost = (cost as i64 + delta) as u64;
                accepted += 1;
            } else {
                placement[cell] = from;
            }
        }
        temp *= 0.82;
    }

    Ok(Placement {
        cell_tile: placement,
        hpwl: cost,
        moves,
        accepted,
    })
}

/// Checks a placement for legality: site kinds match and no tile exceeds
/// its capacity.
pub fn check_legal(fabric: &Fabric, nl: &Netlist, p: &Placement) -> Result<()> {
    if p.cell_tile.len() != nl.cells.len() {
        return Err(Error::Cad("placement arity mismatch".into()));
    }
    let mut occupancy = vec![0u32; fabric.num_tiles() as usize];
    for (i, c) in nl.cells.iter().enumerate() {
        let t = p.cell_tile[i];
        if fabric.site_kind(t) != required_site(c.kind) {
            return Err(Error::Cad(format!(
                "cell {i} ({:?}) on wrong site kind at tile {t}",
                c.kind
            )));
        }
        occupancy[t as usize] += 1;
        if occupancy[t as usize] > fabric.capacity(t) {
            return Err(Error::Cad(format!("tile {t} over capacity")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitise_pivpav::netlist::synthesize_core;

    #[test]
    fn places_legally_and_improves() {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("t", 16, 120, 16, 4, 11);
        let p = place(&fabric, &nl, PlaceEffort::normal(), 1).unwrap();
        check_legal(&fabric, &nl, &p).unwrap();
        assert!(p.moves > 0);
        assert!(p.accepted > 0);
        // Annealed cost should beat a fresh low-effort run almost always.
        let lazy = place(
            &fabric,
            &nl,
            PlaceEffort {
                moves_per_temp: 1,
                temp_steps: 1,
            },
            1,
        )
        .unwrap();
        assert!(p.hpwl <= lazy.hpwl, "annealing must not worsen cost");
    }

    #[test]
    fn rejects_designs_that_do_not_fit() {
        let fabric = Fabric::tiny(); // 48 logic sites
        let nl = synthesize_core("big", 16, 200, 0, 0, 3);
        let err = place(&fabric, &nl, PlaceEffort::fast(), 1).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn rejects_too_many_dsps() {
        let fabric = Fabric::tiny(); // 4 dsp sites
        let nl = synthesize_core("dspy", 8, 4, 0, 6, 3);
        assert!(place(&fabric, &nl, PlaceEffort::fast(), 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("t", 8, 40, 4, 1, 5);
        let a = place(&fabric, &nl, PlaceEffort::fast(), 9).unwrap();
        let b = place(&fabric, &nl, PlaceEffort::fast(), 9).unwrap();
        assert_eq!(a.cell_tile, b.cell_tile);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn hpwl_consistency() {
        // Reported incremental cost must equal recomputed-from-scratch.
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("t", 8, 60, 8, 2, 5);
        let p = place(&fabric, &nl, PlaceEffort::fast(), 5).unwrap();
        let pins = build_pins(&fabric, &nl);
        assert_eq!(p.hpwl, total_hpwl(&fabric, &pins, &p.cell_tile));
    }

    #[test]
    fn empty_netlist_places_trivially() {
        let fabric = Fabric::tiny();
        let nl = Netlist::new("empty");
        let p = place(&fabric, &nl, PlaceEffort::fast(), 1).unwrap();
        assert_eq!(p.hpwl, 0);
        check_legal(&fabric, &nl, &p).unwrap();
    }
}
