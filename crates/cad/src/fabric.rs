//! FPGA fabric model.
//!
//! A scaled-down Virtex-4-style fabric: a rectangular grid of tiles, most
//! of them CLBs (each holding several LUT/FF/carry sites), with dedicated
//! DSP columns. A rectangular *partial-reconfiguration region* hosts the
//! custom instructions; the placer and router operate inside it, and the
//! bitstream generator emits one configuration frame per column — matching
//! the column-oriented frame addressing of the real device.

/// Cell-site classes a tile can provide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// LUT/FF/carry sites (CLB tiles).
    Logic,
    /// DSP48 sites.
    Dsp,
}

/// The fabric: grid dimensions, DSP columns, and site capacities.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Tiles in X (columns).
    pub width: u32,
    /// Tiles in Y (rows).
    pub height: u32,
    /// Which columns are DSP columns.
    pub dsp_columns: Vec<u32>,
    /// Logic sites per CLB tile (V4 slice pairs: 4 slices × 2 LUTs).
    pub logic_sites_per_tile: u32,
    /// DSP sites per DSP tile.
    pub dsp_sites_per_tile: u32,
    /// Routing channel capacity per tile edge (wires).
    pub channel_width: u32,
}

impl Fabric {
    /// The partial-reconfiguration region Woolcano reserves: enough for a
    /// handful of arithmetic cores. 28×20 tiles ≈ 4.2k LUT sites + 2 DSP
    /// columns, with V4-class channel capacity.
    pub fn pr_region() -> Fabric {
        Fabric {
            width: 28,
            height: 20,
            dsp_columns: vec![9, 18],
            logic_sites_per_tile: 8,
            dsp_sites_per_tile: 1,
            channel_width: 72,
        }
    }

    /// A tiny fabric for unit tests.
    pub fn tiny() -> Fabric {
        Fabric {
            width: 4,
            height: 4,
            dsp_columns: vec![2],
            logic_sites_per_tile: 4,
            dsp_sites_per_tile: 1,
            channel_width: 8,
        }
    }

    /// Total tile count.
    pub fn num_tiles(&self) -> u32 {
        self.width * self.height
    }

    /// Tile id for `(x, y)`.
    pub fn tile_at(&self, x: u32, y: u32) -> u32 {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// `(x, y)` of a tile id.
    pub fn xy(&self, tile: u32) -> (u32, u32) {
        (tile % self.width, tile / self.width)
    }

    /// Site kind a tile provides.
    pub fn site_kind(&self, tile: u32) -> SiteKind {
        let (x, _) = self.xy(tile);
        if self.dsp_columns.contains(&x) {
            SiteKind::Dsp
        } else {
            SiteKind::Logic
        }
    }

    /// Cell capacity of a tile.
    pub fn capacity(&self, tile: u32) -> u32 {
        match self.site_kind(tile) {
            SiteKind::Logic => self.logic_sites_per_tile,
            SiteKind::Dsp => self.dsp_sites_per_tile,
        }
    }

    /// Total logic-site capacity of the fabric.
    pub fn total_logic_sites(&self) -> u32 {
        (0..self.num_tiles())
            .filter(|&t| self.site_kind(t) == SiteKind::Logic)
            .map(|t| self.capacity(t))
            .sum()
    }

    /// Total DSP sites.
    pub fn total_dsp_sites(&self) -> u32 {
        (0..self.num_tiles())
            .filter(|&t| self.site_kind(t) == SiteKind::Dsp)
            .map(|t| self.capacity(t))
            .sum()
    }

    /// Manhattan distance between two tiles (routing-cost unit).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Orthogonal neighbors of a tile.
    pub fn neighbors(&self, tile: u32) -> Vec<u32> {
        let (x, y) = self.xy(tile);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(self.tile_at(x - 1, y));
        }
        if x + 1 < self.width {
            out.push(self.tile_at(x + 1, y));
        }
        if y > 0 {
            out.push(self.tile_at(x, y - 1));
        }
        if y + 1 < self.height {
            out.push(self.tile_at(x, y + 1));
        }
        out
    }

    /// Undirected edge id between adjacent tiles (for channel occupancy).
    /// Edges are numbered: horizontal edges first, then vertical.
    pub fn edge_id(&self, a: u32, b: u32) -> u32 {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        debug_assert_eq!(self.distance(a, b), 1, "edge requires adjacency");
        if ay == by {
            // Horizontal edge at (min_x, y).
            let x = ax.min(bx);
            ay * (self.width - 1) + x
        } else {
            let h_edges = self.height * (self.width - 1);
            let y = ay.min(by);
            h_edges + y * self.width + ax
        }
    }

    /// Total number of routing edges.
    pub fn num_edges(&self) -> u32 {
        self.height * (self.width - 1) + (self.height - 1) * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let f = Fabric::tiny();
        assert_eq!(f.num_tiles(), 16);
        assert_eq!(f.tile_at(3, 2), 11);
        assert_eq!(f.xy(11), (3, 2));
        assert_eq!(f.distance(f.tile_at(0, 0), f.tile_at(3, 3)), 6);
    }

    #[test]
    fn site_kinds_and_capacity() {
        let f = Fabric::tiny();
        assert_eq!(f.site_kind(f.tile_at(2, 0)), SiteKind::Dsp);
        assert_eq!(f.site_kind(f.tile_at(1, 0)), SiteKind::Logic);
        assert_eq!(f.capacity(f.tile_at(1, 0)), 4);
        assert_eq!(f.capacity(f.tile_at(2, 0)), 1);
        // 12 logic tiles x 4 + 4 dsp tiles x 1.
        assert_eq!(f.total_logic_sites(), 48);
        assert_eq!(f.total_dsp_sites(), 4);
    }

    #[test]
    fn neighbors_edge_cases() {
        let f = Fabric::tiny();
        assert_eq!(f.neighbors(f.tile_at(0, 0)).len(), 2);
        assert_eq!(f.neighbors(f.tile_at(1, 1)).len(), 4);
        assert_eq!(f.neighbors(f.tile_at(3, 3)).len(), 2);
    }

    #[test]
    fn edge_ids_unique_and_symmetric() {
        let f = Fabric::tiny();
        let mut seen = std::collections::HashSet::new();
        for t in 0..f.num_tiles() {
            for n in f.neighbors(t) {
                let e = f.edge_id(t, n);
                assert_eq!(e, f.edge_id(n, t), "edge id must be symmetric");
                assert!(e < f.num_edges());
                seen.insert(e);
            }
        }
        assert_eq!(seen.len() as u32, f.num_edges());
    }

    #[test]
    fn pr_region_sizing() {
        let f = Fabric::pr_region();
        assert!(f.total_logic_sites() >= 2_500);
        assert!(f.total_dsp_sites() >= 16);
    }
}
