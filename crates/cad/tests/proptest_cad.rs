//! Property tests for the CAD substrate: every synthesized netlist must
//! place legally, route to full connectivity without overflow (on a
//! sufficiently provisioned fabric), produce monotone timing, and emit a
//! CRC-clean bitstream.

use jitise_cad::{
    analyze, bitgen, check_connected, check_legal, place, route, Fabric, PlaceEffort, RouteEffort,
};
use jitise_pivpav::netlist::synthesize_core;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn placements_are_legal(
        luts in 4u32..160,
        ffs in 0u32..24,
        dsps in 0u32..6,
        width in 2u32..16,
        seed in 0u64..5000,
    ) {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("p", width, luts, ffs, dsps, seed);
        nl.validate().expect("generator emits valid netlists");
        let p = place(&fabric, &nl, PlaceEffort::fast(), seed).expect("fits");
        check_legal(&fabric, &nl, &p).expect("legal placement");
    }

    #[test]
    fn routes_connect_without_overflow(
        luts in 4u32..120,
        width in 2u32..12,
        seed in 0u64..5000,
    ) {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("r", width, luts, luts / 8, 1, seed);
        let p = place(&fabric, &nl, PlaceEffort::fast(), seed).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::normal()).unwrap();
        prop_assert_eq!(r.overflow, 0, "overflowed {} channels", r.overflow);
        check_connected(&fabric, &nl, &p, &r).expect("all nets connected");
    }

    #[test]
    fn timing_positive_and_bitstream_verifies(
        luts in 4u32..100,
        seed in 0u64..5000,
    ) {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("t", 8, luts, 4, 1, seed);
        let p = place(&fabric, &nl, PlaceEffort::fast(), seed).unwrap();
        let r = route(&fabric, &nl, &p, RouteEffort::fast()).unwrap();
        let timing = analyze(&fabric, &nl, &p, &r);
        prop_assert!(timing.critical_path_ns > 0.0);
        prop_assert!(timing.fmax_mhz.is_finite() && timing.fmax_mhz > 0.0);
        let bs = bitgen(&fabric, &nl, &p, &r, true);
        prop_assert!(bs.verify());
        // Frames always cover every PR column.
        prop_assert_eq!(bs.frames, fabric.width);
    }

    #[test]
    fn better_placement_effort_never_hurts_much(
        luts in 20u32..120,
        seed in 0u64..1000,
    ) {
        let fabric = Fabric::pr_region();
        let nl = synthesize_core("e", 8, luts, 4, 1, seed);
        let fast = place(&fabric, &nl, PlaceEffort::fast(), seed).unwrap();
        let normal = place(&fabric, &nl, PlaceEffort::normal(), seed).unwrap();
        // Annealing longer should reach at-most-slightly-worse cost (SA is
        // stochastic; allow 25 % slack).
        prop_assert!(
            (normal.hpwl as f64) <= fast.hpwl as f64 * 1.25,
            "normal {} vs fast {}",
            normal.hpwl,
            fast.hpwl
        );
    }
}
