//! Property tests for the IR crate: random programs through the verifier,
//! printer, passes, and DFG construction.

use jitise_ir::passes::{optimize_function, OptLevel};
use jitise_ir::printer::print_function;
use jitise_ir::verify::verify_function;
use jitise_ir::{BlockId, CmpOp, Dfg, Function, FunctionBuilder, Operand as Op, Type};
use proptest::prelude::*;

/// Random straight-line expression DAG inside one block, with optional
/// branching tail.
#[derive(Debug, Clone)]
struct Spec {
    ops: Vec<(u8, u8, u8, i32)>, // (opcode selector, operand a idx, operand b idx, constant)
    branch: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((0u8..10, any::<u8>(), any::<u8>(), -100i32..100), 1..40),
        any::<bool>(),
    )
        .prop_map(|(ops, branch)| Spec { ops, branch })
}

fn build(spec: &Spec) -> Function {
    let mut b = FunctionBuilder::new("p", vec![Type::I32, Type::I32], Type::I32);
    let mut vals = vec![Op::Arg(0), Op::Arg(1)];
    for &(sel, ai, bi, k) in &spec.ops {
        let a = vals[ai as usize % vals.len()];
        let c = vals[bi as usize % vals.len()];
        let v = match sel {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, Op::ci32(k)),
            3 => b.xor(a, c),
            4 => b.and(a, c),
            5 => b.or(a, c),
            6 => b.shl(a, Op::ci32(k & 31)),
            7 => {
                let cond = b.cmp(CmpOp::Slt, a, c);
                b.select(cond, a, c)
            }
            8 => b.add(a, Op::ci32(0)), // fodder for instcombine
            _ => b.mul(a, Op::ci32(1)),
        };
        vals.push(v);
    }
    let last = *vals.last().unwrap();
    if spec.branch {
        let t = b.new_block("t");
        let e = b.new_block("e");
        let cond = b.cmp(CmpOp::Sgt, last, Op::ci32(0));
        b.cond_br(cond, t, e);
        b.switch_to(t);
        b.ret(last);
        b.switch_to(e);
        b.ret(Op::ci32(0));
    } else {
        b.ret(last);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_functions_verify(s in spec()) {
        let f = build(&s);
        verify_function(&f).expect("builder output verifies");
    }

    #[test]
    fn printer_never_panics_and_mentions_every_inst(s in spec()) {
        let f = build(&s);
        let text = print_function(&f);
        prop_assert!(text.contains("func p"));
        // Every attached instruction id appears in the listing.
        for bid in f.block_ids() {
            for &iid in &f.block(bid).insts {
                if f.inst(iid).has_result() {
                    prop_assert!(
                        text.contains(&format!("%{} = ", iid.0)),
                        "missing %{}", iid.0
                    );
                }
            }
        }
    }

    #[test]
    fn o3_output_verifies_and_shrinks(s in spec()) {
        let mut f = build(&s);
        let before = f.num_insts();
        optimize_function(&mut f, OptLevel::O3);
        verify_function(&f).expect("optimized verifies");
        prop_assert!(f.num_insts() <= before);
    }

    #[test]
    fn dfg_edges_are_consistent(s in spec()) {
        let f = build(&s);
        let dfg = Dfg::build(&f, BlockId(0));
        for (i, node) in dfg.nodes.iter().enumerate() {
            for &p in &node.preds {
                prop_assert!((p as usize) < i, "topological order violated");
                prop_assert!(
                    dfg.nodes[p as usize].succs.contains(&(i as u32)),
                    "succ/pred mismatch"
                );
            }
        }
        // Full set always convex; depth bounded by size.
        let all = vec![true; dfg.len()];
        prop_assert!(dfg.is_convex(&all));
        if !dfg.is_empty() {
            prop_assert!(dfg.depth() <= dfg.len());
        }
    }

    #[test]
    fn use_counts_match_manual_count(s in spec()) {
        let f = build(&s);
        let counts = f.use_counts();
        let mut manual = vec![0u32; f.insts.len()];
        for bid in f.block_ids() {
            for &iid in &f.block(bid).insts {
                for op in f.inst(iid).operands() {
                    if let Op::Inst(d) = op {
                        manual[d.idx()] += 1;
                    }
                }
            }
            if let Some(t) = &f.block(bid).term {
                for op in t.operands() {
                    if let Op::Inst(d) = op {
                        manual[d.idx()] += 1;
                    }
                }
            }
        }
        prop_assert_eq!(counts, manual);
    }
}
