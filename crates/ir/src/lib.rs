//! # jitise-ir — the "bitcode" intermediate representation
//!
//! A small SSA intermediate representation standing in for LLVM bitcode in
//! the paper's tool flow (Fig. 1: *source code → bitcode (IR) → VM*). The
//! ISE algorithms, the PivPav datapath generator and the Woolcano binary
//! patcher all operate on this IR, exactly as the paper's pipeline operates
//! on LLVM IR.
//!
//! Feature inventory:
//!
//! * **Types** — integer widths 1/8/16/32/64, f32/f64, pointers
//!   ([`Type`]).
//! * **Instructions** — ~50 operations covering the LLVM subset relevant to
//!   ISE: integer/float arithmetic, bitwise logic, shifts, comparisons,
//!   select, casts, loads/stores, address arithmetic (GEP), alloca, global
//!   addresses, calls, external math functions, phi nodes, and the
//!   [`InstKind::Custom`] opcode through which the Woolcano patcher invokes
//!   loaded custom instructions ([`inst`]).
//! * **Functions & modules** — block-structured CFG with explicit
//!   terminators ([`function`], [`module`]).
//! * **Builder** — ergonomic construction API used by the benchmark
//!   applications ([`builder::FunctionBuilder`]).
//! * **Verifier** — SSA dominance checking, type checking, CFG sanity
//!   ([`verify`]).
//! * **Dominators / CFG utilities** — ([`dom`]).
//! * **Optimization passes** — an `-O3`-like pipeline (constant folding,
//!   local CSE, instcombine, DCE, CFG simplification), modeling the paper's
//!   "compilation to bitcode … covers also the runtime of the standard
//!   (-O3) optimizations" ([`passes`]).
//! * **Data-flow graphs** — per-basic-block DFGs, the input to the ISE
//!   algorithms ([`dfg`]).
//! * **Printer** — human-readable textual form ([`printer`]).
//! * **Statistics** — block/instruction counts and size distributions used
//!   throughout Tables I and II ([`stats`]).

pub mod builder;
pub mod dfg;
pub mod dom;
pub mod function;
pub mod inst;
pub mod module;
pub mod passes;
pub mod printer;
pub mod stats;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use dfg::{Dfg, DfgNode};
pub use function::{Block, BlockId, Function, InstId};
pub use inst::{BinOp, CmpOp, ExtFunc, Imm, Inst, InstKind, Opcode, Operand, Terminator, UnOp};
pub use module::{FuncId, Global, GlobalId, Module};
pub use types::Type;
