//! Value types.
//!
//! The IR is typed at LLVM granularity: scalar integers of the widths that
//! matter for hardware cost modeling (the PivPav database keys its IP cores
//! by operator × bit width), IEEE floats, and an opaque pointer type.

/// Scalar value type of an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit integer (comparison results, select conditions).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// Opaque pointer (modeled as a 32-bit address on the PPC405 target).
    Ptr,
    /// No value (functions returning nothing, store instructions).
    Void,
}

impl Type {
    /// Bit width of the type as implemented in a datapath.
    ///
    /// Pointers are 32-bit on the PowerPC-405 target. `Void` has width 0.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::I64 => 64,
            Type::F32 => 32,
            Type::F64 => 64,
            Type::Ptr => 32,
            Type::Void => 0,
        }
    }

    /// True for the integer family (including `I1` and `Ptr`).
    pub fn is_int(self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::Ptr
        )
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// True if a value of this type exists at runtime.
    pub fn is_value(self) -> bool {
        self != Type::Void
    }

    /// Size in bytes when stored to memory (minimum 1 for `I1`).
    pub fn byte_size(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::I1 => 1,
            t => t.bits() / 8,
        }
    }

    /// The integer type of a given bit width, if one exists.
    pub fn int_of_bits(bits: u32) -> Option<Type> {
        match bits {
            1 => Some(Type::I1),
            8 => Some(Type::I8),
            16 => Some(Type::I16),
            32 => Some(Type::I32),
            64 => Some(Type::I64),
            _ => None,
        }
    }

    /// Sign-extends `raw` (stored in the low `bits()` of a u64) to i64.
    #[inline]
    pub fn sext(self, raw: u64) -> i64 {
        let b = self.bits();
        if b == 0 || b >= 64 {
            return raw as i64;
        }
        let shift = 64 - b;
        ((raw << shift) as i64) >> shift
    }

    /// Truncates an i64 to this type's width, returning the raw bits
    /// (zero-extended into the u64).
    #[inline]
    pub fn trunc(self, v: i64) -> u64 {
        let b = self.bits();
        if b == 0 || b >= 64 {
            return v as u64;
        }
        (v as u64) & ((1u64 << b) - 1)
    }

    /// Short mnemonic used by the printer (`i32`, `f64`, `ptr`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
            Type::Void => "void",
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Type::I1.bits(), 1);
        assert_eq!(Type::I32.bits(), 32);
        assert_eq!(Type::F64.bits(), 64);
        assert_eq!(Type::Ptr.bits(), 32);
        assert_eq!(Type::Void.bits(), 0);
    }

    #[test]
    fn classification() {
        assert!(Type::I8.is_int());
        assert!(Type::Ptr.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(!Type::Void.is_value());
        assert!(Type::I1.is_value());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Type::I1.byte_size(), 1);
        assert_eq!(Type::I16.byte_size(), 2);
        assert_eq!(Type::F64.byte_size(), 8);
        assert_eq!(Type::Ptr.byte_size(), 4);
    }

    #[test]
    fn sext_trunc_roundtrip() {
        // -1 in i8 is 0xff raw.
        assert_eq!(Type::I8.trunc(-1), 0xff);
        assert_eq!(Type::I8.sext(0xff), -1);
        assert_eq!(Type::I16.sext(0x8000), i16::MIN as i64);
        assert_eq!(Type::I32.trunc(0x1_2345_6789), 0x2345_6789);
        assert_eq!(Type::I64.trunc(-5), (-5i64) as u64);
        assert_eq!(Type::I64.sext((-5i64) as u64), -5);
        assert_eq!(Type::I1.trunc(3), 1);
        assert_eq!(Type::I1.sext(1), -1); // i1 sign extension: 1 -> -1
    }

    #[test]
    fn int_of_bits_lookup() {
        assert_eq!(Type::int_of_bits(16), Some(Type::I16));
        assert_eq!(Type::int_of_bits(7), None);
    }

    #[test]
    fn display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Void.to_string(), "void");
    }
}
