//! IR verifier.
//!
//! Checks the structural and SSA invariants the rest of the pipeline relies
//! on. Run after construction and after every optimization pass in debug
//! flows; the ISE algorithms assume a verified function.
//!
//! Checks performed:
//!
//! 1. every block is terminated;
//! 2. all branch targets are valid block ids;
//! 3. every instruction is attached to exactly one block;
//! 4. operand ids are in range and refer to value-producing instructions;
//! 5. defs dominate uses (phi uses checked at the incoming edge);
//! 6. phis appear only at the head of a block and have exactly one incoming
//!    entry per predecessor;
//! 7. light type checking (binary operand/result family agreement, `i1`
//!    branch conditions, return type matches signature);
//! 8. call arity/return type against the callee signature (module level).

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::{InstKind, Operand, Terminator};
use crate::module::Module;
use crate::types::Type;
use jitise_base::{Error, Result};

fn err(f: &Function, msg: impl std::fmt::Display) -> Error {
    Error::Ir(format!("{}: {}", f.name, msg))
}

/// Verifies a single function (all checks except cross-function call
/// signatures).
pub fn verify_function(f: &Function) -> Result<()> {
    let nblocks = f.blocks.len();
    if nblocks == 0 {
        return Err(err(f, "function has no blocks"));
    }

    // 1 & 2: terminators and target validity.
    for bid in f.block_ids() {
        let block = f.block(bid);
        let term = block
            .term
            .as_ref()
            .ok_or_else(|| err(f, format!("block {} is unterminated", block.name)))?;
        for succ in term.successors() {
            if succ.idx() >= nblocks {
                return Err(err(
                    f,
                    format!("block {} branches to invalid block {:?}", block.name, succ),
                ));
            }
        }
        if let Terminator::Ret(v) = term {
            match (v, f.ret) {
                (None, Type::Void) => {}
                (Some(_), Type::Void) => {
                    return Err(err(f, "returning a value from a void function"))
                }
                (None, _) => return Err(err(f, "missing return value")),
                (Some(_), _) => {}
            }
        }
    }

    // 3: unique attachment.
    let mut seen = vec![false; f.insts.len()];
    for bid in f.block_ids() {
        for &iid in &f.block(bid).insts {
            if iid.idx() >= f.insts.len() {
                return Err(err(f, format!("block references invalid inst {iid:?}")));
            }
            if seen[iid.idx()] {
                return Err(err(f, format!("instruction {iid:?} attached twice")));
            }
            seen[iid.idx()] = true;
        }
    }

    let owner = f.inst_blocks();
    let dt = DomTree::compute(f);
    let preds = f.predecessors();

    // Position of each instruction within its block, for same-block
    // dominance checks.
    let mut pos_in_block = vec![usize::MAX; f.insts.len()];
    for bid in f.block_ids() {
        for (i, &iid) in f.block(bid).insts.iter().enumerate() {
            pos_in_block[iid.idx()] = i;
        }
    }

    let check_operand = |user_block: BlockId, user_pos: usize, op: Operand| -> Result<()> {
        match op {
            Operand::Const(_) => Ok(()),
            Operand::Arg(i) => {
                if (i as usize) < f.params.len() {
                    Ok(())
                } else {
                    Err(err(f, format!("argument index {i} out of range")))
                }
            }
            Operand::Inst(def) => {
                if def.idx() >= f.insts.len() {
                    return Err(err(f, format!("operand references invalid inst {def:?}")));
                }
                if !f.inst(def).has_result() {
                    return Err(err(f, format!("operand references void inst {def:?}")));
                }
                let def_block = owner[def.idx()]
                    .ok_or_else(|| err(f, format!("operand references detached inst {def:?}")))?;
                if def_block == user_block {
                    if pos_in_block[def.idx()] >= user_pos {
                        return Err(err(
                            f,
                            format!("use of {def:?} before its definition in the same block"),
                        ));
                    }
                    Ok(())
                } else if dt.dominates(def_block, user_block) {
                    Ok(())
                } else {
                    Err(err(
                        f,
                        format!(
                            "def of {def:?} in block {} does not dominate use in block {}",
                            f.block(def_block).name,
                            f.block(user_block).name
                        ),
                    ))
                }
            }
        }
    };

    for bid in f.block_ids() {
        if !dt.is_reachable(bid) {
            // Unreachable code is allowed (the paper's "dead code"); its
            // operands are not dominance-checked.
            continue;
        }
        let block = f.block(bid);
        let mut saw_non_phi = false;
        for (pos, &iid) in block.insts.iter().enumerate() {
            let inst = f.inst(iid);
            match &inst.kind {
                InstKind::Phi(incoming) => {
                    // 6: placement and incoming-edge correspondence.
                    if saw_non_phi {
                        return Err(err(
                            f,
                            format!("phi {iid:?} appears after non-phi in block {}", block.name),
                        ));
                    }
                    let mut expected: Vec<BlockId> = preds[bid.idx()].clone();
                    expected.sort_unstable();
                    expected.dedup();
                    let mut got: Vec<BlockId> = incoming.iter().map(|(b, _)| *b).collect();
                    got.sort_unstable();
                    let got_dedup = {
                        let mut g = got.clone();
                        g.dedup();
                        g
                    };
                    if got.len() != got_dedup.len() {
                        return Err(err(f, format!("phi {iid:?} has duplicate incoming block")));
                    }
                    if got_dedup != expected {
                        return Err(err(
                            f,
                            format!(
                                "phi {iid:?} incoming blocks {:?} != predecessors {:?} of {}",
                                got_dedup, expected, block.name
                            ),
                        ));
                    }
                    // 5 (phi flavor): each incoming value must dominate the
                    // *end* of the corresponding predecessor.
                    for (from, op) in incoming {
                        if let Operand::Inst(def) = op {
                            let def_block = owner[def.idx()].ok_or_else(|| {
                                err(f, format!("phi references detached inst {def:?}"))
                            })?;
                            if !dt.dominates(def_block, *from) {
                                return Err(err(
                                    f,
                                    format!(
                                        "phi incoming {def:?} does not dominate edge block {}",
                                        f.block(*from).name
                                    ),
                                ));
                            }
                        } else if let Operand::Arg(i) = op {
                            if *i as usize >= f.params.len() {
                                return Err(err(f, format!("argument index {i} out of range")));
                            }
                        }
                    }
                }
                _ => {
                    saw_non_phi = true;
                    for op in inst.operands() {
                        check_operand(bid, pos, op)?;
                    }
                }
            }
            type_check_inst(f, iid)?;
        }
        // Terminator operands: treated as used at the end of the block.
        if let Some(term) = &block.term {
            for op in term.operands() {
                check_operand(bid, usize::MAX, op)?;
            }
            if let Terminator::CondBr(c, ..) = term {
                if operand_ty(f, *c) != Type::I1 {
                    return Err(err(f, "cond_br condition is not i1"));
                }
            }
        }
    }
    Ok(())
}

/// Type of an operand in the context of a function.
pub fn operand_ty(f: &Function, op: Operand) -> Type {
    match op {
        Operand::Inst(id) => f.inst(id).ty,
        Operand::Arg(i) => f.params[i as usize],
        Operand::Const(imm) => imm.ty,
    }
}

fn type_check_inst(f: &Function, iid: InstId) -> Result<()> {
    let inst = f.inst(iid);
    let ty = |op: Operand| operand_ty(f, op);
    match &inst.kind {
        InstKind::Bin(op, a, b) => {
            let (ta, tb) = (ty(*a), ty(*b));
            if op.is_float() {
                if !ta.is_float() || !tb.is_float() || !inst.ty.is_float() {
                    return Err(err(f, format!("float binop {op:?} with non-float types")));
                }
            } else if !ta.is_int() || !tb.is_int() || !inst.ty.is_int() {
                return Err(err(f, format!("int binop {op:?} with non-int types")));
            }
            Ok(())
        }
        InstKind::Cmp(op, a, b) => {
            if inst.ty != Type::I1 {
                return Err(err(f, "cmp result must be i1"));
            }
            let (ta, tb) = (ty(*a), ty(*b));
            if op.is_float() != ta.is_float() || ta.is_float() != tb.is_float() {
                return Err(err(f, format!("cmp {op:?} operand family mismatch")));
            }
            Ok(())
        }
        InstKind::Select(c, a, b) => {
            if ty(*c) != Type::I1 {
                return Err(err(f, "select condition must be i1"));
            }
            if ty(*a) != ty(*b) {
                return Err(err(f, "select arms have different types"));
            }
            Ok(())
        }
        InstKind::Store(_, p) | InstKind::Load(p) => {
            if ty(*p) != Type::Ptr {
                return Err(err(f, "memory op address must be ptr"));
            }
            if matches!(inst.kind, InstKind::Store(..)) && inst.ty != Type::Void {
                return Err(err(f, "store must have void type"));
            }
            Ok(())
        }
        InstKind::Gep { base, .. } => {
            if ty(*base) != Type::Ptr || inst.ty != Type::Ptr {
                return Err(err(f, "gep base/result must be ptr"));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Verifies every function in a module plus cross-function call signatures
/// and global references.
pub fn verify_module(m: &Module) -> Result<()> {
    for func in &m.funcs {
        verify_function(func)?;
        for bid in func.block_ids() {
            for &iid in &func.block(bid).insts {
                match &func.inst(iid).kind {
                    InstKind::Call(callee, args) => {
                        let target = m.funcs.get(callee.idx()).ok_or_else(|| {
                            err(func, format!("call to invalid function {callee:?}"))
                        })?;
                        if target.params.len() != args.len() {
                            return Err(err(
                                func,
                                format!(
                                    "call to {} with {} args, expected {}",
                                    target.name,
                                    args.len(),
                                    target.params.len()
                                ),
                            ));
                        }
                        if func.inst(iid).ty != target.ret {
                            return Err(err(
                                func,
                                format!("call result type mismatch for {}", target.name),
                            ));
                        }
                    }
                    InstKind::GlobalAddr(g) if g.idx() >= m.globals.len() => {
                        return Err(err(func, format!("invalid global {g:?}")));
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Block;
    use crate::inst::{BinOp, Imm, Inst, Operand as Op};

    #[test]
    fn accepts_valid_function() {
        let mut b = FunctionBuilder::new("ok", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(1));
        b.ret(x);
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_unterminated_block() {
        let f = Function::new("bad", vec![], Type::Void);
        let e = verify_function(&f).unwrap_err();
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn rejects_use_before_def_same_block() {
        let mut f = Function::new("bad", vec![], Type::I32);
        // Manually attach instructions in the wrong order.
        let add_late = Inst {
            kind: InstKind::Bin(BinOp::Add, Op::ci32(1), Op::ci32(2)),
            ty: Type::I32,
        };
        let use_early = Inst {
            kind: InstKind::Bin(BinOp::Add, Op::Inst(InstId(1)), Op::ci32(1)),
            ty: Type::I32,
        };
        f.insts.push(use_early); // InstId(0) uses InstId(1)
        f.insts.push(add_late);
        f.blocks[0].insts = vec![InstId(0), InstId(1)];
        f.blocks[0].term = Some(Terminator::Ret(Some(Op::Inst(InstId(0)))));
        let e = verify_function(&f).unwrap_err();
        assert!(e.to_string().contains("before its definition"));
    }

    #[test]
    fn rejects_non_dominating_cross_block_use() {
        // entry -> {a, b} -> join; value defined in a, used in join.
        let mut b = FunctionBuilder::new("bad", vec![Type::I1], Type::I32);
        let a_blk = b.new_block("a");
        let b_blk = b.new_block("b");
        let join = b.new_block("join");
        b.cond_br(Op::Arg(0), a_blk, b_blk);
        b.switch_to(a_blk);
        let v = b.add(Op::ci32(1), Op::ci32(2));
        b.br(join);
        b.switch_to(b_blk);
        b.br(join);
        b.switch_to(join);
        b.ret(v);
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.to_string().contains("does not dominate"));
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::I32);
        let next = b.new_block("next");
        b.br(next);
        b.switch_to(next);
        let phi = b.phi(Type::I32);
        // Claim an incoming edge from `next` itself, which is not a pred.
        b.add_incoming(phi, next, Op::ci32(1));
        b.ret(phi);
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.to_string().contains("incoming blocks"));
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FunctionBuilder::new("bad", vec![Type::F64], Type::F64);
        // Integer add on a float — builder allows it, verifier catches it.
        let x = b.add(Op::Arg(0), Op::cf64(1.0));
        b.ret(x);
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.to_string().contains("int binop"));
    }

    #[test]
    fn rejects_bad_cond_type() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I32], Type::Void);
        let t = b.new_block("t");
        let e_blk = b.new_block("e");
        b.cond_br(Op::Arg(0), t, e_blk); // i32 condition
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e_blk);
        b.ret_void();
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.to_string().contains("not i1"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        b.ret(Op::ci32(1));
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.to_string().contains("void function"));
    }

    #[test]
    fn module_call_arity_checked() {
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::new("callee", vec![Type::I32], Type::I32);
        callee.ret(Op::Arg(0));
        let callee_id = m.add_func(callee.finish());

        let mut caller = FunctionBuilder::new("caller", vec![], Type::I32);
        let r = caller.call(callee_id, vec![], Type::I32); // missing arg
        caller.ret(r);
        m.add_func(caller.finish());

        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("0 args"));
    }

    #[test]
    fn allows_unreachable_sloppy_blocks() {
        let mut b = FunctionBuilder::new("ok", vec![], Type::Void);
        let dead = b.new_block("dead");
        b.ret_void();
        b.switch_to(dead);
        b.ret_void();
        let mut f = b.finish();
        // Attach an instruction with a forward reference inside dead code;
        // still fine because dominance is not checked there.
        f.insts.push(Inst {
            kind: InstKind::Bin(BinOp::Add, Op::Const(Imm::i32(1)), Op::Const(Imm::i32(2))),
            ty: Type::I32,
        });
        let last = InstId((f.insts.len() - 1) as u32);
        f.blocks[1].insts.push(last);
        // Re-terminate since push order changed nothing structurally.
        assert!(verify_function(&f).is_ok());
        let _ = Block {
            name: String::new(),
            insts: vec![],
            term: None,
        };
    }
}
