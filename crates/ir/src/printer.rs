//! Textual IR printer.
//!
//! Produces a human-readable listing in an LLVM-flavored syntax. Used for
//! debugging, golden tests, and the examples' `--dump-ir` flags.

use crate::function::{BlockId, Function};
use crate::inst::{InstKind, Operand, Terminator};
use crate::module::Module;
use std::fmt::Write;

/// Renders one operand.
fn fmt_operand(f: &Function, op: Operand) -> String {
    match op {
        Operand::Inst(id) => format!("%{}", id.0),
        Operand::Arg(i) => format!("%arg{i}"),
        Operand::Const(imm) => {
            if imm.ty.is_float() {
                format!("{} {:?}", imm.ty, imm.as_f64())
            } else {
                format!("{} {}", imm.ty, imm.as_i64())
            }
        }
    }
    .replace("%arg", {
        // Keep arg formatting stable even if params are missing (printer
        // must never panic on malformed IR).
        let _ = f;
        "%arg"
    })
}

fn fmt_block_ref(f: &Function, b: BlockId) -> String {
    format!("@{}", f.block(b).name)
}

/// Renders one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect();
    let _ = writeln!(
        out,
        "func {}({}) -> {} {{",
        f.name,
        params.join(", "),
        f.ret
    );
    for bid in f.block_ids() {
        let block = f.block(bid);
        let _ = writeln!(out, "{}:", block.name);
        for &iid in &block.insts {
            let inst = f.inst(iid);
            let lhs = if inst.has_result() {
                format!("  %{} = ", iid.0)
            } else {
                "  ".to_string()
            };
            let body = match &inst.kind {
                InstKind::Bin(op, a, b) => format!(
                    "{} {} {}, {}",
                    op.mnemonic(),
                    inst.ty,
                    fmt_operand(f, *a),
                    fmt_operand(f, *b)
                ),
                InstKind::Un(op, a) => {
                    format!("{} {} {}", op.mnemonic(), inst.ty, fmt_operand(f, *a))
                }
                InstKind::Cmp(op, a, b) => format!(
                    "{} {}, {}",
                    op.mnemonic(),
                    fmt_operand(f, *a),
                    fmt_operand(f, *b)
                ),
                InstKind::Select(c, a, b) => format!(
                    "select {}, {}, {}",
                    fmt_operand(f, *c),
                    fmt_operand(f, *a),
                    fmt_operand(f, *b)
                ),
                InstKind::Load(p) => format!("load {} {}", inst.ty, fmt_operand(f, *p)),
                InstKind::Store(v, p) => {
                    format!("store {}, {}", fmt_operand(f, *v), fmt_operand(f, *p))
                }
                InstKind::Gep {
                    base,
                    index,
                    elem_bytes,
                } => format!(
                    "gep {}, {}, x{}",
                    fmt_operand(f, *base),
                    fmt_operand(f, *index),
                    elem_bytes
                ),
                InstKind::Alloca(bytes) => format!("alloca {bytes}"),
                InstKind::GlobalAddr(g) => format!("global_addr g{}", g.0),
                InstKind::Call(fid, args) => format!(
                    "call f{}({})",
                    fid.0,
                    args.iter()
                        .map(|a| fmt_operand(f, *a))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                InstKind::CallExt(ef, args) => format!(
                    "call.ext {}({})",
                    ef.name(),
                    args.iter()
                        .map(|a| fmt_operand(f, *a))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                InstKind::Phi(incoming) => format!(
                    "phi {} {}",
                    inst.ty,
                    incoming
                        .iter()
                        .map(|(b, v)| format!(
                            "[{} <- {}]",
                            fmt_operand(f, *v),
                            fmt_block_ref(f, *b)
                        ))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                InstKind::Custom(slot, args) => format!(
                    "ci.{}({})",
                    slot,
                    args.iter()
                        .map(|a| fmt_operand(f, *a))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            let _ = writeln!(out, "{lhs}{body}");
        }
        match &block.term {
            Some(Terminator::Br(t)) => {
                let _ = writeln!(out, "  br {}", fmt_block_ref(f, *t));
            }
            Some(Terminator::CondBr(c, a, b)) => {
                let _ = writeln!(
                    out,
                    "  cond_br {}, {}, {}",
                    fmt_operand(f, *c),
                    fmt_block_ref(f, *a),
                    fmt_block_ref(f, *b)
                );
            }
            Some(Terminator::Switch(v, cases, default)) => {
                let cs = cases
                    .iter()
                    .map(|(k, b)| format!("{k} -> {}", fmt_block_ref(f, *b)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "  switch {} [{}] default {}",
                    fmt_operand(f, *v),
                    cs,
                    fmt_block_ref(f, *default)
                );
            }
            Some(Terminator::Ret(Some(v))) => {
                let _ = writeln!(out, "  ret {}", fmt_operand(f, *v));
            }
            Some(Terminator::Ret(None)) => {
                let _ = writeln!(out, "  ret");
            }
            None => {
                let _ = writeln!(out, "  <unterminated>");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {} {{", m.name);
    for g in &m.globals {
        let _ = writeln!(
            out,
            "  global {} : {} x {} ({} bytes)",
            g.name,
            g.elem_ty,
            g.elem_count(),
            g.size
        );
    }
    for f in &m.funcs {
        for line in print_function(f).lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpOp, Operand as Op};
    use crate::module::Global;
    use crate::types::Type;

    #[test]
    fn prints_arithmetic() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(1));
        let y = b.mul(x, x);
        b.ret(y);
        let s = print_function(&b.finish());
        assert!(s.contains("func f(i32 %arg0) -> i32"));
        assert!(s.contains("%0 = add i32 %arg0, i32 1"));
        assert!(s.contains("%1 = mul i32 %0, %0"));
        assert!(s.contains("ret %1"));
    }

    #[test]
    fn prints_control_flow() {
        let mut b = FunctionBuilder::new("g", vec![Type::I32], Type::I32);
        let t = b.new_block("then");
        let e = b.new_block("else");
        let c = b.cmp(CmpOp::Slt, Op::Arg(0), Op::ci32(10));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Op::ci32(1));
        b.switch_to(e);
        b.ret(Op::ci32(0));
        let s = print_function(&b.finish());
        assert!(s.contains("icmp.slt"));
        assert!(s.contains("cond_br %0, @then, @else"));
    }

    #[test]
    fn prints_phi_and_memory() {
        let mut b = FunctionBuilder::new("h", vec![Type::I32], Type::I32);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let p = b.alloca(4);
            b.store(i, p);
        });
        b.ret(Op::ci32(0));
        let s = print_function(&b.finish());
        assert!(s.contains("phi i32"));
        assert!(s.contains("alloca 4"));
        assert!(s.contains("store"));
    }

    #[test]
    fn prints_module_with_globals() {
        let mut m = Module::new("demo");
        m.add_global(Global::zeroed("buf", Type::F64, 8));
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        b.ret_void();
        m.add_func(b.finish());
        let s = print_module(&m);
        assert!(s.contains("module demo"));
        assert!(s.contains("global buf : f64 x 8 (64 bytes)"));
        assert!(s.contains("func main()"));
    }

    #[test]
    fn never_panics_on_unterminated() {
        let b = FunctionBuilder::new("open", vec![], Type::Void);
        let s = print_function(b.func());
        assert!(s.contains("<unterminated>"));
    }
}
