//! Module statistics.
//!
//! Table I of the paper characterizes each application by basic-block and
//! instruction counts and notes derived quantities (e.g. "the average basic
//! block has only 7.64 LLVM instructions"). These helpers compute the same
//! aggregates over our IR.

use crate::function::Function;
use crate::inst::{InstKind, Opcode};
use crate::module::Module;

/// Aggregate size statistics of a module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleStats {
    /// Number of functions.
    pub funcs: usize,
    /// Total basic blocks (paper column `blk`).
    pub blocks: usize,
    /// Total instructions (paper column `ins`).
    pub insts: usize,
    /// Mean instructions per block.
    pub avg_block_size: f64,
    /// Largest block size.
    pub max_block_size: usize,
    /// Number of memory-access instructions (load/store/gep/alloca).
    pub mem_insts: usize,
    /// Number of global-address materializations.
    pub global_insts: usize,
    /// Number of calls (module + external).
    pub call_insts: usize,
    /// Number of float-typed instructions.
    pub float_insts: usize,
    /// Number of phi nodes.
    pub phi_insts: usize,
    /// Fraction of instructions that are hardware-infeasible for ISE
    /// (memory, globals, calls, phis) — §V-D discusses how these limit
    /// candidate sizes.
    pub infeasible_frac: f64,
}

/// Computes statistics over a whole module.
pub fn module_stats(m: &Module) -> ModuleStats {
    let mut blocks = 0usize;
    let mut insts = 0usize;
    let mut max_block = 0usize;
    let mut mem = 0usize;
    let mut globals = 0usize;
    let mut calls = 0usize;
    let mut floats = 0usize;
    let mut phis = 0usize;

    for f in &m.funcs {
        blocks += f.num_blocks();
        for bid in f.block_ids() {
            let blk = f.block(bid);
            insts += blk.len();
            max_block = max_block.max(blk.len());
            for &iid in &blk.insts {
                let inst = f.inst(iid);
                match inst.opcode() {
                    Opcode::Load | Opcode::Store | Opcode::Gep | Opcode::Alloca => mem += 1,
                    Opcode::GlobalAddr => globals += 1,
                    Opcode::Call | Opcode::CallExt => calls += 1,
                    Opcode::Phi => phis += 1,
                    _ => {}
                }
                if inst.ty.is_float() {
                    floats += 1;
                }
            }
        }
    }
    let infeasible = mem + globals + calls + phis;
    ModuleStats {
        funcs: m.funcs.len(),
        blocks,
        insts,
        avg_block_size: if blocks == 0 {
            0.0
        } else {
            insts as f64 / blocks as f64
        },
        max_block_size: max_block,
        mem_insts: mem,
        global_insts: globals,
        call_insts: calls,
        float_insts: floats,
        phi_insts: phis,
        infeasible_frac: if insts == 0 {
            0.0
        } else {
            infeasible as f64 / insts as f64
        },
    }
}

/// Per-function opcode histogram, keyed by the flat opcode.
pub fn opcode_histogram(f: &Function) -> std::collections::BTreeMap<String, usize> {
    let mut map = std::collections::BTreeMap::new();
    for bid in f.block_ids() {
        for &iid in &f.block(bid).insts {
            let name = match &f.inst(iid).kind {
                InstKind::Bin(op, ..) => op.mnemonic().to_string(),
                InstKind::Un(op, ..) => op.mnemonic().to_string(),
                InstKind::Cmp(op, ..) => op.mnemonic().to_string(),
                InstKind::Select(..) => "select".into(),
                InstKind::Load(..) => "load".into(),
                InstKind::Store(..) => "store".into(),
                InstKind::Gep { .. } => "gep".into(),
                InstKind::Alloca(..) => "alloca".into(),
                InstKind::GlobalAddr(..) => "global_addr".into(),
                InstKind::Call(..) => "call".into(),
                InstKind::CallExt(ef, ..) => format!("call.{}", ef.name()),
                InstKind::Phi(..) => "phi".into(),
                InstKind::Custom(..) => "custom".into(),
            };
            *map.entry(name).or_insert(0) += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::types::Type;

    #[test]
    fn counts_basic_quantities() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let p = b.alloca(4);
        b.store(Op::Arg(0), p);
        let v = b.load(Type::I32, p);
        let w = b.add(v, Op::ci32(1));
        b.ret(w);
        m.add_func(b.finish());
        let s = module_stats(&m);
        assert_eq!(s.funcs, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.insts, 4);
        assert_eq!(s.mem_insts, 3);
        assert_eq!(s.max_block_size, 4);
        assert!((s.infeasible_frac - 0.75).abs() < 1e-9);
    }

    #[test]
    fn histogram_names() {
        let mut b = FunctionBuilder::new("f", vec![Type::F64], Type::F64);
        let x = b.fmul(Op::Arg(0), Op::Arg(0));
        let y = b.fadd(x, Op::cf64(1.0));
        b.ret(y);
        let f = b.finish();
        let h = opcode_histogram(&f);
        assert_eq!(h.get("fmul"), Some(&1));
        assert_eq!(h.get("fadd"), Some(&1));
        assert_eq!(h.get("add"), None);
    }

    #[test]
    fn empty_module() {
        let s = module_stats(&Module::new("empty"));
        assert_eq!(s.insts, 0);
        assert_eq!(s.avg_block_size, 0.0);
        assert_eq!(s.infeasible_frac, 0.0);
    }
}
