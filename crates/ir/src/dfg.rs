//! Per-basic-block data-flow graphs.
//!
//! The ISE algorithms (paper §III, *Candidate Search*) "search the data flow
//! graphs for suitable instruction patterns". A [`Dfg`] is the data-flow
//! view of one basic block: one node per instruction, a producer→consumer
//! edge for every same-block operand reference, and explicit *external
//! input* / *output* annotations.
//!
//! An instruction's value is an **output** of the block if it is consumed by
//! another block, by the terminator, or if the instruction has a side effect
//! (its node can never be absorbed into a consumer's cone). Operands coming
//! from other blocks, from function arguments, or from constants are
//! **external inputs** — although constants are tracked separately because a
//! hardware implementation bakes them into the datapath for free.

use crate::function::{BlockId, Function, InstId};
use crate::inst::{InstKind, Opcode, Operand};
use crate::types::Type;

/// A node of the data-flow graph: one instruction of the block.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// The instruction this node represents.
    pub inst: InstId,
    /// Flat opcode (what the PivPav database keys on).
    pub opcode: Opcode,
    /// Result type.
    pub ty: Type,
    /// Same-block operand producers (indices into [`Dfg::nodes`]).
    pub preds: Vec<u32>,
    /// Same-block consumers (indices into [`Dfg::nodes`]).
    pub succs: Vec<u32>,
    /// Number of operands arriving from outside the block (instruction
    /// results from other blocks + function arguments).
    pub ext_inputs: u32,
    /// Number of constant operands.
    pub const_inputs: u32,
    /// True if the node's value escapes the block (used by the terminator
    /// or by instructions in other blocks).
    pub escapes: bool,
}

/// The data-flow graph of one basic block.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// The block this graph was built from.
    pub block: BlockId,
    /// Nodes in instruction order. Because the IR is SSA and same-block
    /// operands must be defined earlier, this order is a topological order
    /// of the graph.
    pub nodes: Vec<DfgNode>,
}

impl Dfg {
    /// Builds the DFG of `block` in `f`.
    ///
    /// `escape_map` support: consumers in *other* blocks are found with a
    /// single scan over the whole function, so building all DFGs of a
    /// function is O(total instructions).
    pub fn build(f: &Function, block: BlockId) -> Dfg {
        let blk = f.block(block);
        // Map from InstId -> node index within this block.
        let mut node_of = std::collections::HashMap::with_capacity(blk.insts.len());
        for (i, &iid) in blk.insts.iter().enumerate() {
            node_of.insert(iid, i as u32);
        }

        let mut nodes: Vec<DfgNode> = blk
            .insts
            .iter()
            .map(|&iid| {
                let inst = f.inst(iid);
                DfgNode {
                    inst: iid,
                    opcode: inst.opcode(),
                    ty: inst.ty,
                    preds: Vec::new(),
                    succs: Vec::new(),
                    ext_inputs: 0,
                    const_inputs: 0,
                    escapes: false,
                }
            })
            .collect();

        // Intra-block edges + external/const input counts.
        for (i, &iid) in blk.insts.iter().enumerate() {
            let inst = f.inst(iid);
            // Phi operands are *control-flow* inputs: even when an incoming
            // value is produced in this block (loop latches), the value
            // travels around the back edge, so it is external by nature.
            let is_phi = matches!(inst.kind, InstKind::Phi(_));
            for op in inst.operands() {
                match op {
                    Operand::Inst(def) => match node_of.get(&def) {
                        Some(&j) if !is_phi => {
                            nodes[i].preds.push(j);
                            nodes[j as usize].succs.push(i as u32);
                        }
                        _ => nodes[i].ext_inputs += 1,
                    },
                    Operand::Arg(_) => nodes[i].ext_inputs += 1,
                    Operand::Const(_) => nodes[i].const_inputs += 1,
                }
            }
        }

        // Escape analysis: values used by the terminator of this block or
        // by any instruction outside this block.
        if let Some(term) = &blk.term {
            for op in term.operands() {
                if let Operand::Inst(def) = op {
                    if let Some(&j) = node_of.get(&def) {
                        nodes[j as usize].escapes = true;
                    }
                }
            }
        }
        for other in f.block_ids() {
            if other == block {
                // Phis in this very block consume values "around the loop";
                // treat those as escaping too.
                for &iid in &f.block(other).insts {
                    if let InstKind::Phi(incoming) = &f.inst(iid).kind {
                        for (_, op) in incoming {
                            if let Operand::Inst(def) = op {
                                if let Some(&j) = node_of.get(def) {
                                    nodes[j as usize].escapes = true;
                                }
                            }
                        }
                    }
                }
                continue;
            }
            for &iid in &f.block(other).insts {
                for op in f.inst(iid).operands() {
                    if let Operand::Inst(def) = op {
                        if let Some(&j) = node_of.get(&def) {
                            nodes[j as usize].escapes = true;
                        }
                    }
                }
            }
            if let Some(term) = &f.block(other).term {
                for op in term.operands() {
                    if let Operand::Inst(def) = op {
                        if let Some(&j) = node_of.get(&def) {
                            nodes[j as usize].escapes = true;
                        }
                    }
                }
            }
        }

        Dfg { block, nodes }
    }

    /// Builds the DFGs of all blocks of a function.
    pub fn build_all(f: &Function) -> Vec<Dfg> {
        f.block_ids().map(|b| Dfg::build(f, b)).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the block had no instructions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of nodes with no intra-block consumers.
    pub fn sinks(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].succs.is_empty())
            .collect()
    }

    /// Critical-path length in nodes (longest chain), a crude ILP measure.
    pub fn depth(&self) -> usize {
        let mut depth = vec![1usize; self.nodes.len()];
        let mut best = 0;
        for i in 0..self.nodes.len() {
            for &p in &self.nodes[i].preds {
                depth[i] = depth[i].max(depth[p as usize] + 1);
            }
            best = best.max(depth[i]);
        }
        best
    }

    /// Available instruction-level parallelism: nodes / critical-path depth.
    pub fn ilp(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.len() as f64 / self.depth() as f64
    }

    /// Checks that a node set is *convex*: no data-flow path from a member
    /// leaves the set and re-enters it. Convexity is required for a set to
    /// be implementable as one atomic custom instruction.
    pub fn is_convex(&self, members: &[bool]) -> bool {
        debug_assert_eq!(members.len(), self.nodes.len());
        // A path out-and-back-in exists iff some member node is reachable
        // from a non-member successor of a member. Nodes are in topological
        // order, so a forward DP suffices: mark nodes reachable from any
        // "escaped" frontier and check membership.
        let n = self.nodes.len();
        let mut tainted = vec![false; n];
        for i in 0..n {
            let via_nonmember_pred = self.nodes[i].preds.iter().any(|&p| {
                !members[p as usize] && (tainted[p as usize] || has_member_pred(self, p, members))
            });
            if members[i] && via_nonmember_pred {
                return false;
            }
            if !members[i] {
                tainted[i] = self.nodes[i]
                    .preds
                    .iter()
                    .any(|&p| members[p as usize] || tainted[p as usize]);
            }
        }
        return true;

        fn has_member_pred(dfg: &Dfg, node: u32, members: &[bool]) -> bool {
            dfg.nodes[node as usize]
                .preds
                .iter()
                .any(|&p| members[p as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;

    /// entry: a = arg0+1; b = a*2; c = a+b; ret c
    fn chain_fn() -> Function {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let a = b.add(Op::Arg(0), Op::ci32(1));
        let b2 = b.mul(a, Op::ci32(2));
        let c = b.add(a, b2);
        b.ret(c);
        b.finish()
    }

    #[test]
    fn edges_and_inputs() {
        let f = chain_fn();
        let dfg = Dfg::build(&f, BlockId(0));
        assert_eq!(dfg.len(), 3);
        // a: 1 ext input (arg0), 1 const.
        assert_eq!(dfg.nodes[0].ext_inputs, 1);
        assert_eq!(dfg.nodes[0].const_inputs, 1);
        // a feeds b and c.
        assert_eq!(dfg.nodes[0].succs, vec![1, 2]);
        // c is consumed by the terminator -> escapes.
        assert!(dfg.nodes[2].escapes);
        assert!(!dfg.nodes[0].escapes);
        assert!(!dfg.nodes[1].escapes);
    }

    #[test]
    fn depth_and_ilp() {
        let f = chain_fn();
        let dfg = Dfg::build(&f, BlockId(0));
        // a -> b -> c is the longest chain.
        assert_eq!(dfg.depth(), 3);
        assert!((dfg.ilp() - 1.0).abs() < 1e-9);
        assert_eq!(dfg.sinks(), vec![2]);
    }

    #[test]
    fn cross_block_escape() {
        let mut b = FunctionBuilder::new("g", vec![Type::I32], Type::I32);
        let next = b.new_block("next");
        let v = b.add(Op::Arg(0), Op::ci32(5));
        b.br(next);
        b.switch_to(next);
        let w = b.mul(v, v); // uses v from the entry block
        b.ret(w);
        let f = b.finish();
        let dfg0 = Dfg::build(&f, BlockId(0));
        assert!(dfg0.nodes[0].escapes, "v is used in another block");
        let dfg1 = Dfg::build(&f, BlockId(1));
        // w has 2 external inputs (v twice).
        assert_eq!(dfg1.nodes[0].ext_inputs, 2);
    }

    #[test]
    fn phi_operands_are_external() {
        let mut b = FunctionBuilder::new("l", vec![Type::I32], Type::I32);
        let i = b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let sq = b.mul(i, i);
            let _ = sq;
        });
        b.ret(i);
        let f = b.finish();
        // Header block (1) holds the phi; its incoming latch value is
        // defined in the body but must not create an intra-block edge.
        let header = Dfg::build(&f, BlockId(1));
        let phi = &header.nodes[0];
        assert_eq!(phi.opcode, Opcode::Phi);
        assert!(phi.preds.is_empty());
        assert!(phi.escapes, "phi value is used by cmp and outside");
    }

    #[test]
    fn convexity() {
        // Diamond inside one block: a; b = f(a); c = g(a); d = b+c.
        let mut bld = FunctionBuilder::new("c", vec![Type::I32], Type::I32);
        let a = bld.add(Op::Arg(0), Op::ci32(1)); // node 0
        let b = bld.mul(a, Op::ci32(3)); // node 1
        let c = bld.xor(a, Op::ci32(7)); // node 2
        let d = bld.add(b, c); // node 3
        bld.ret(d);
        let f = bld.finish();
        let dfg = Dfg::build(&f, BlockId(0));

        // {a, b, c, d} convex.
        assert!(dfg.is_convex(&[true, true, true, true]));
        // {a, d} NOT convex: a -> b(out) -> d re-enters.
        assert!(!dfg.is_convex(&[true, false, false, true]));
        // {a, b} convex.
        assert!(dfg.is_convex(&[true, true, false, false]));
        // {b, d} not convex? path b->d direct; c is outside feeding d but
        // no member->nonmember->member path exists (a is not a member).
        assert!(dfg.is_convex(&[false, true, false, true]));
        // Empty set trivially convex.
        assert!(dfg.is_convex(&[false, false, false, false]));
    }

    #[test]
    fn build_all_covers_blocks() {
        let mut b = FunctionBuilder::new("m", vec![Type::I32], Type::I32);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |_, _| {});
        b.ret(Op::ci32(0));
        let f = b.finish();
        let dfgs = Dfg::build_all(&f);
        assert_eq!(dfgs.len(), f.num_blocks());
    }
}
