//! CFG simplification.
//!
//! Two conservative transformations:
//!
//! 1. **Linear merge** — a block ending in an unconditional branch to a
//!    block with exactly one predecessor (and no phis) absorbs that block.
//! 2. **Unreachable removal** — blocks not reachable from the entry are
//!    deleted and all block ids compacted; phi incoming edges from removed
//!    blocks are dropped.
//!
//! Constant-condition branch folding (`cond_br true` → `br`) is also
//! performed, which is what typically makes blocks unreachable in the first
//! place.

use super::Pass;
use crate::function::{BlockId, Function};
use crate::inst::{InstKind, Operand, Terminator};

/// The CFG-simplification pass.
pub struct SimplifyCfg;

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run(&self, f: &mut Function) -> bool {
        let mut changed = false;
        changed |= fold_const_branches(f);
        changed |= merge_linear_chains(f);
        changed |= remove_unreachable(f);
        changed
    }
}

/// `cond_br const, a, b` → `br a|b`; `switch const` → `br case`.
fn fold_const_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        let new_term = match &block.term {
            Some(Terminator::CondBr(Operand::Const(imm), a, b)) => {
                changed = true;
                Some(Terminator::Br(if imm.as_i64() != 0 { *a } else { *b }))
            }
            Some(Terminator::Switch(Operand::Const(imm), cases, default)) => {
                let v = imm.as_i64();
                let target = cases
                    .iter()
                    .find(|(k, _)| *k == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                changed = true;
                Some(Terminator::Br(target))
            }
            _ => None,
        };
        if let Some(t) = new_term {
            block.term = Some(t);
        }
    }
    changed
}

/// Merges `b -> c` chains where `c` has exactly one predecessor.
fn merge_linear_chains(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let target = match &f.block(b).term {
                Some(Terminator::Br(c)) => *c,
                _ => continue,
            };
            if target == b || target.idx() == 0 {
                continue; // self-loop or entry
            }
            if preds[target.idx()].len() != 1 {
                continue;
            }
            let has_phi = f
                .block(target)
                .insts
                .iter()
                .any(|&iid| matches!(f.inst(iid).kind, InstKind::Phi(_)));
            if has_phi {
                continue;
            }
            // Absorb target into b.
            let absorbed_insts = std::mem::take(&mut f.block_mut(target).insts);
            let absorbed_term = f.block_mut(target).term.take();
            // Leave the husk with a self-return so the function stays
            // structurally valid until unreachable removal runs.
            f.block_mut(target).term = Some(Terminator::Ret(None));
            let b_block = f.block_mut(b);
            b_block.insts.extend(absorbed_insts);
            b_block.term = absorbed_term;
            // Phis in target's successors referenced `target` as the
            // incoming block; that edge now originates from `b`.
            let succs: Vec<BlockId> = f
                .block(b)
                .term
                .as_ref()
                .map(|t| t.successors())
                .unwrap_or_default();
            for s in succs {
                for iid in f.block(s).insts.clone() {
                    if let InstKind::Phi(incoming) = &mut f.inst_mut(iid).kind {
                        for (from, _) in incoming {
                            if *from == target {
                                *from = b;
                            }
                        }
                    }
                }
            }
            merged = true;
            changed = true;
            break; // predecessor sets changed; recompute
        }
        if !merged {
            return changed;
        }
    }
}

/// Deletes unreachable blocks and compacts ids.
fn remove_unreachable(f: &mut Function) -> bool {
    let reachable: std::collections::HashSet<BlockId> = f.rpo().into_iter().collect();
    if reachable.len() == f.blocks.len() {
        return false;
    }
    // Old -> new id map for surviving blocks, preserving order (entry = 0).
    let mut remap = vec![None; f.blocks.len()];
    let mut next = 0u32;
    for b in f.block_ids() {
        if reachable.contains(&b) {
            remap[b.idx()] = Some(BlockId(next));
            next += 1;
        }
    }
    // Drop phi edges from unreachable preds and remap surviving labels.
    for inst in &mut f.insts {
        if let InstKind::Phi(incoming) = &mut inst.kind {
            incoming.retain(|(from, _)| remap[from.idx()].is_some());
            for (from, _) in incoming {
                *from = remap[from.idx()].expect("retained edge");
            }
        }
    }
    // Rebuild the block vector.
    let old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut block) in old_blocks.into_iter().enumerate() {
        if remap[i].is_none() {
            continue;
        }
        if let Some(term) = &mut block.term {
            term.map_targets(|t| remap[t.idx()].expect("reachable target of reachable block"));
        }
        f.blocks.push(block);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::types::Type;
    use crate::verify::verify_function;

    #[test]
    fn merges_straight_line() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let mid = b.new_block("mid");
        let end = b.new_block("end");
        let x = b.add(Op::Arg(0), Op::ci32(1));
        b.br(mid);
        b.switch_to(mid);
        let y = b.mul(x, Op::ci32(2));
        b.br(end);
        b.switch_to(end);
        b.ret(y);
        let mut f = b.finish();
        assert!(SimplifyCfg.run(&mut f));
        assert!(verify_function(&f).is_ok());
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn folds_constant_branch_and_drops_dead_arm() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.cond_br(Op::Const(crate::inst::Imm::bool(true)), t, e);
        b.switch_to(t);
        b.ret(Op::ci32(1));
        b.switch_to(e);
        b.ret(Op::ci32(0));
        let mut f = b.finish();
        assert!(SimplifyCfg.run(&mut f));
        assert!(verify_function(&f).is_ok());
        // entry merged with t; e unreachable and removed.
        assert_eq!(f.num_blocks(), 1);
        match f.blocks[0].term.as_ref().unwrap() {
            Terminator::Ret(Some(Op::Const(imm))) => assert_eq!(imm.as_i64(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn preserves_loops() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let i = b.counted_loop("i", Op::ci32(0), Op::Arg(0), |_, _| {});
        b.ret(i);
        let mut f = b.finish();
        let blocks_before = f.num_blocks();
        SimplifyCfg.run(&mut f);
        assert!(verify_function(&f).is_ok());
        // Loop header has 2 preds and a phi; body branches back. Only the
        // entry->header edge might merge, and the header has phis, so
        // nothing merges.
        assert_eq!(f.num_blocks(), blocks_before);
    }

    #[test]
    fn removes_unreachable_and_fixes_phis() {
        let mut b = FunctionBuilder::new("f", vec![Type::I1], Type::I32);
        let good = b.new_block("good");
        let dead = b.new_block("dead");
        let join = b.new_block("join");
        b.br(good);
        b.switch_to(good);
        b.br(join);
        b.switch_to(dead);
        b.br(join);
        b.switch_to(join);
        let phi = b.phi(Type::I32);
        b.add_incoming(phi, good, Op::ci32(1));
        b.add_incoming(phi, dead, Op::ci32(2));
        b.ret(phi);
        let mut f = b.finish();
        assert!(SimplifyCfg.run(&mut f));
        assert!(verify_function(&f).is_ok());
        assert!(f.num_blocks() <= 3);
        // The phi must have lost its `dead` edge (it may then have been
        // single-incoming but constfold handles collapsing, not this pass).
        for inst in &f.insts {
            if let InstKind::Phi(incoming) = &inst.kind {
                assert!(incoming.len() <= 1);
            }
        }
    }

    #[test]
    fn folds_constant_switch() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let c1 = b.new_block("c1");
        let c2 = b.new_block("c2");
        let d = b.new_block("d");
        b.switch(Op::ci32(2), vec![(1, c1), (2, c2)], d);
        b.switch_to(c1);
        b.ret(Op::ci32(10));
        b.switch_to(c2);
        b.ret(Op::ci32(20));
        b.switch_to(d);
        b.ret(Op::ci32(30));
        let mut f = b.finish();
        assert!(SimplifyCfg.run(&mut f));
        assert!(verify_function(&f).is_ok());
        match f.blocks[0].term.as_ref().unwrap() {
            Terminator::Ret(Some(Op::Const(imm))) => assert_eq!(imm.as_i64(), 20),
            other => panic!("unexpected {other:?}"),
        }
    }
}
