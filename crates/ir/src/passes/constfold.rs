//! Constant folding.
//!
//! Evaluates instructions whose operands are all constants and replaces
//! their uses with the computed immediate. Folding semantics match the VM's
//! interpreter semantics exactly (wrap-around integer arithmetic at the
//! result width, IEEE float arithmetic); the equivalence proptest relies on
//! this.

use super::Pass;
use crate::function::Function;
use crate::inst::{BinOp, CmpOp, Imm, InstKind, Operand, UnOp};
use crate::types::Type;
use std::collections::HashMap;

/// The constant-folding pass.
pub struct ConstFold;

/// Folds an integer binary op at a given width. Returns `None` for division
/// by zero (left to trap at runtime, like LLVM's undef semantics would not
/// allow folding).
#[inline]
pub fn fold_int_bin(op: BinOp, ty: Type, a: i64, b: i64) -> Option<i64> {
    let wrap = |v: i64| ty.sext(ty.trunc(v));
    let ub = ty.trunc(b);
    let ua = ty.trunc(a);
    let shift_mask = ty.bits().max(1) - 1;
    Some(match op {
        BinOp::Add => wrap(a.wrapping_add(b)),
        BinOp::Sub => wrap(a.wrapping_sub(b)),
        BinOp::Mul => wrap(a.wrapping_mul(b)),
        BinOp::SDiv => {
            if b == 0 {
                return None;
            }
            wrap(a.wrapping_div(b))
        }
        BinOp::UDiv => {
            if ub == 0 {
                return None;
            }
            wrap((ua / ub) as i64)
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            wrap(a.wrapping_rem(b))
        }
        BinOp::URem => {
            if ub == 0 {
                return None;
            }
            wrap((ua % ub) as i64)
        }
        BinOp::And => wrap(a & b),
        BinOp::Or => wrap(a | b),
        BinOp::Xor => wrap(a ^ b),
        BinOp::Shl => wrap(a.wrapping_shl(b as u32 & shift_mask)),
        BinOp::LShr => wrap((ua >> (b as u32 & shift_mask)) as i64),
        BinOp::AShr => wrap(ty.sext(ty.trunc(a)) >> (b as u32 & shift_mask)),
        _ => return None, // float ops handled separately
    })
}

/// Folds a float binary op.
#[inline]
pub fn fold_float_bin(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::FAdd => a + b,
        BinOp::FSub => a - b,
        BinOp::FMul => a * b,
        BinOp::FDiv => a / b,
        _ => return None,
    })
}

/// Folds a comparison; returns the boolean result.
#[inline]
pub fn fold_cmp(op: CmpOp, ty: Type, a: &Imm, b: &Imm) -> bool {
    if op.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        match op {
            CmpOp::FOeq => x == y,
            CmpOp::FOne => x != y,
            CmpOp::FOlt => x < y,
            CmpOp::FOle => x <= y,
            CmpOp::FOgt => x > y,
            CmpOp::FOge => x >= y,
            _ => unreachable!(),
        }
    } else {
        let (sx, sy) = (a.as_i64(), b.as_i64());
        let (ux, uy) = (ty.trunc(sx), ty.trunc(sy));
        match op {
            CmpOp::Eq => sx == sy,
            CmpOp::Ne => sx != sy,
            CmpOp::Slt => sx < sy,
            CmpOp::Sle => sx <= sy,
            CmpOp::Sgt => sx > sy,
            CmpOp::Sge => sx >= sy,
            CmpOp::Ult => ux < uy,
            CmpOp::Ule => ux <= uy,
            CmpOp::Ugt => ux > uy,
            CmpOp::Uge => ux >= uy,
            _ => unreachable!(),
        }
    }
}

/// Folds a unary op / cast.
#[inline]
pub fn fold_un(op: UnOp, ty: Type, a: &Imm) -> Option<Imm> {
    Some(match op {
        UnOp::Neg => Imm::int(ty, a.as_i64().wrapping_neg()),
        UnOp::Not => Imm::int(ty, !a.as_i64()),
        UnOp::FNeg => match ty {
            Type::F32 => Imm::f32(-(a.as_f64() as f32)),
            _ => Imm::f64(-a.as_f64()),
        },
        UnOp::Trunc => Imm::int(ty, a.as_i64()),
        UnOp::SExt => Imm::int(ty, a.as_i64()),
        UnOp::ZExt => Imm::int(ty, a.ty.trunc(a.as_i64()) as i64),
        UnOp::FpToSi => {
            let v = a.as_f64();
            if !v.is_finite() {
                return None;
            }
            Imm::int(ty, v as i64)
        }
        UnOp::SiToFp => match ty {
            Type::F32 => Imm::f32(a.as_i64() as f32),
            _ => Imm::f64(a.as_i64() as f64),
        },
        UnOp::FpExt => Imm::f64(a.as_f64()),
        UnOp::FpTrunc => Imm::f32(a.as_f64() as f32),
    })
}

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, f: &mut Function) -> bool {
        let mut replace: HashMap<crate::function::InstId, Operand> = HashMap::new();
        for bid in f.block_ids().collect::<Vec<_>>() {
            for &iid in &f.block(bid).insts.clone() {
                if replace.contains_key(&iid) {
                    continue;
                }
                let inst = f.inst(iid);
                let folded: Option<Imm> = match &inst.kind {
                    InstKind::Bin(op, Operand::Const(a), Operand::Const(b)) => {
                        if op.is_float() {
                            fold_float_bin(*op, a.as_f64(), b.as_f64()).map(|v| match inst.ty {
                                Type::F32 => Imm::f32(v as f32),
                                _ => Imm::f64(v),
                            })
                        } else {
                            fold_int_bin(*op, inst.ty, a.as_i64(), b.as_i64())
                                .map(|v| Imm::int(inst.ty, v))
                        }
                    }
                    InstKind::Un(op, Operand::Const(a)) => fold_un(*op, inst.ty, a),
                    InstKind::Cmp(op, Operand::Const(a), Operand::Const(b)) => {
                        Some(Imm::bool(fold_cmp(*op, a.ty, a, b)))
                    }
                    InstKind::Select(Operand::Const(c), a, b) => {
                        let chosen = if c.as_i64() != 0 { *a } else { *b };
                        match chosen {
                            Operand::Const(imm) => Some(imm),
                            other => {
                                replace.insert(iid, other);
                                None
                            }
                        }
                    }
                    // Phi with a single incoming value collapses to it.
                    InstKind::Phi(incoming) if incoming.len() == 1 => match incoming[0].1 {
                        Operand::Const(imm) => Some(imm),
                        other => {
                            replace.insert(iid, other);
                            None
                        }
                    },
                    _ => None,
                };
                if let Some(imm) = folded {
                    replace.insert(iid, Operand::Const(imm));
                }
            }
        }
        let changed = !replace.is_empty();
        super::apply_replacements(f, &replace);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::inst::Terminator;

    fn ret_const_of(f: &Function) -> Option<i64> {
        match f.blocks[0].term.as_ref().unwrap() {
            Terminator::Ret(Some(Op::Const(imm))) => Some(imm.as_i64()),
            _ => None,
        }
    }

    #[test]
    fn folds_arith_chain() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let x = b.add(Op::ci32(2), Op::ci32(3)); // 5
        let y = b.mul(x, Op::ci32(4)); // 20
        let z = b.sub(y, Op::ci32(1)); // 19
        b.ret(z);
        let mut f = b.finish();
        // Iterate like the pass manager would.
        while ConstFold.run(&mut f) {}
        assert_eq!(ret_const_of(&f), Some(19));
    }

    #[test]
    fn fold_respects_width_wraparound() {
        // 200 + 100 in i8 wraps to 44 (300 mod 256 = 44).
        assert_eq!(fold_int_bin(BinOp::Add, Type::I8, 200, 100), Some(44));
        // i32 multiply wraps.
        let v = fold_int_bin(BinOp::Mul, Type::I32, i32::MAX as i64, 2).unwrap();
        assert_eq!(v, i32::MAX.wrapping_mul(2) as i64);
    }

    #[test]
    fn division_by_zero_not_folded() {
        assert_eq!(fold_int_bin(BinOp::SDiv, Type::I32, 1, 0), None);
        assert_eq!(fold_int_bin(BinOp::URem, Type::I32, 1, 0), None);
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let x = b.sdiv(Op::ci32(1), Op::ci32(0));
        b.ret(x);
        let mut f = b.finish();
        assert!(!ConstFold.run(&mut f));
    }

    #[test]
    fn folds_comparisons_signed_vs_unsigned() {
        let a = Imm::i32(-1);
        let b = Imm::i32(1);
        assert!(fold_cmp(CmpOp::Slt, Type::I32, &a, &b));
        // Unsigned: 0xffffffff > 1.
        assert!(!fold_cmp(CmpOp::Ult, Type::I32, &a, &b));
        assert!(fold_cmp(CmpOp::Ugt, Type::I32, &a, &b));
    }

    #[test]
    fn folds_float() {
        assert_eq!(fold_float_bin(BinOp::FMul, 2.5, 4.0), Some(10.0));
        let a = Imm::f64(1.5);
        let b = Imm::f64(1.5);
        assert!(fold_cmp(CmpOp::FOeq, Type::F64, &a, &b));
    }

    #[test]
    fn folds_casts() {
        assert_eq!(
            fold_un(UnOp::ZExt, Type::I32, &Imm::int(Type::I8, -1))
                .unwrap()
                .as_i64(),
            255
        );
        assert_eq!(
            fold_un(UnOp::SExt, Type::I32, &Imm::int(Type::I8, -1))
                .unwrap()
                .as_i64(),
            -1
        );
        assert_eq!(
            fold_un(UnOp::FpToSi, Type::I32, &Imm::f64(3.9))
                .unwrap()
                .as_i64(),
            3
        );
        assert!(fold_un(UnOp::FpToSi, Type::I32, &Imm::f64(f64::NAN)).is_none());
    }

    #[test]
    fn const_select_folds_to_arm() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let s = b.select(Op::Const(Imm::bool(true)), Op::Arg(0), Op::ci32(9));
        b.ret(s);
        let mut f = b.finish();
        assert!(ConstFold.run(&mut f));
        match f.blocks[0].term.as_ref().unwrap() {
            Terminator::Ret(Some(Op::Arg(0))) => {}
            other => panic!("expected ret arg0, got {other:?}"),
        }
    }

    #[test]
    fn shift_masks_amount() {
        // Shifting an i32 by 33 behaves like shifting by 1 (LLVM-style mask).
        assert_eq!(fold_int_bin(BinOp::Shl, Type::I32, 1, 33), Some(2));
        assert_eq!(fold_int_bin(BinOp::LShr, Type::I32, 4, 33), Some(2));
    }
}
