//! Local common-subexpression elimination.
//!
//! Within each basic block, pure instructions with identical operation and
//! operands are collapsed to the first occurrence. Commutative operations
//! are canonicalized by sorting their operand keys so `a+b` and `b+a`
//! unify. Loads are not CSE'd (no alias analysis in this pipeline; the
//! paper's VM performs alias analysis, but correctness here beats parity).

use super::Pass;
use crate::function::{Function, InstId};
use crate::inst::{InstKind, Operand};
use std::collections::HashMap;

/// The local-CSE pass.
pub struct LocalCse;

/// A hashable key describing a pure computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum OpKey {
    Inst(u32),
    Arg(u32),
    // Constants keyed by type + raw bits.
    Const(u8, u64),
}

fn op_key(op: Operand) -> OpKey {
    match op {
        Operand::Inst(id) => OpKey::Inst(id.0),
        Operand::Arg(i) => OpKey::Arg(i),
        Operand::Const(imm) => OpKey::Const(
            imm.ty.bits() as u8 | ((imm.ty.is_float() as u8) << 7),
            imm.bits,
        ),
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(crate::inst::BinOp, OpKey, OpKey),
    Un(crate::inst::UnOp, u8, OpKey),
    Cmp(crate::inst::CmpOp, OpKey, OpKey),
    Select(OpKey, OpKey, OpKey),
    Gep(OpKey, OpKey, u32),
    GlobalAddr(u32),
}

fn expr_key(inst: &crate::inst::Inst) -> Option<ExprKey> {
    Some(match &inst.kind {
        InstKind::Bin(op, a, b) => {
            let (mut ka, mut kb) = (op_key(*a), op_key(*b));
            if op.is_commutative() && kb < ka {
                std::mem::swap(&mut ka, &mut kb);
            }
            ExprKey::Bin(*op, ka, kb)
        }
        InstKind::Un(op, a) => ExprKey::Un(*op, inst.ty.bits() as u8, op_key(*a)),
        InstKind::Cmp(op, a, b) => ExprKey::Cmp(*op, op_key(*a), op_key(*b)),
        InstKind::Select(c, a, b) => ExprKey::Select(op_key(*c), op_key(*a), op_key(*b)),
        InstKind::Gep {
            base,
            index,
            elem_bytes,
        } => ExprKey::Gep(op_key(*base), op_key(*index), *elem_bytes),
        InstKind::GlobalAddr(g) => ExprKey::GlobalAddr(g.0),
        // Loads, stores, calls, allocas, phis, custom ops: not CSE-able.
        _ => return None,
    })
}

impl Pass for LocalCse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, f: &mut Function) -> bool {
        let mut replace: HashMap<InstId, Operand> = HashMap::new();
        for bid in f.block_ids().collect::<Vec<_>>() {
            let mut seen: HashMap<ExprKey, InstId> = HashMap::new();
            for &iid in &f.block(bid).insts {
                if let Some(key) = expr_key(f.inst(iid)) {
                    match seen.get(&key) {
                        Some(&first) => {
                            replace.insert(iid, Operand::Inst(first));
                        }
                        None => {
                            seen.insert(key, iid);
                        }
                    }
                }
            }
        }
        let changed = !replace.is_empty();
        super::apply_replacements(f, &replace);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::passes::dce::Dce;
    use crate::types::Type;
    use crate::verify::verify_function;

    #[test]
    fn unifies_identical_expressions() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.add(Op::Arg(0), Op::Arg(1));
        let z = b.mul(x, y);
        b.ret(z);
        let mut f = b.finish();
        assert!(LocalCse.run(&mut f));
        Dce.run(&mut f);
        assert!(verify_function(&f).is_ok());
        assert_eq!(f.num_insts(), 2, "one add must be removed");
    }

    #[test]
    fn unifies_commutative_swaps() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.add(Op::Arg(1), Op::Arg(0));
        let z = b.sub(x, y);
        b.ret(z);
        let mut f = b.finish();
        assert!(LocalCse.run(&mut f));
        Dce.run(&mut f);
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn does_not_unify_noncommutative_swaps() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.sub(Op::Arg(0), Op::Arg(1));
        let y = b.sub(Op::Arg(1), Op::Arg(0));
        let z = b.add(x, y);
        b.ret(z);
        let mut f = b.finish();
        assert!(!LocalCse.run(&mut f));
        assert_eq!(f.num_insts(), 3);
    }

    #[test]
    fn loads_never_cse() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::I32);
        let v1 = b.load(Type::I32, Op::Arg(0));
        b.store(Op::ci32(7), Op::Arg(0));
        let v2 = b.load(Type::I32, Op::Arg(0));
        let s = b.add(v1, v2);
        b.ret(s);
        let mut f = b.finish();
        assert!(!LocalCse.run(&mut f));
        assert_eq!(f.num_insts(), 4);
    }

    #[test]
    fn cse_is_block_local() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let next = b.new_block("next");
        let x = b.add(Op::Arg(0), Op::ci32(1));
        b.br(next);
        b.switch_to(next);
        let y = b.add(Op::Arg(0), Op::ci32(1)); // same expr, other block
        let z = b.add(x, y);
        b.ret(z);
        let mut f = b.finish();
        // Local CSE must NOT unify across blocks.
        assert!(!LocalCse.run(&mut f));
    }

    #[test]
    fn distinguishes_constant_types() {
        use crate::inst::Imm;
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
        // Same bit pattern 1 but different const types must not unify.
        let x = b.add(Op::Arg(0), Op::Const(Imm::i64(1)));
        let y = b.add(Op::Arg(0), Op::Const(Imm::int(Type::I64, 1)));
        let z = b.add(x, y);
        b.ret(z);
        let mut f = b.finish();
        // These ARE the same type+bits, so they do unify.
        assert!(LocalCse.run(&mut f));
    }
}
