//! Dead-code elimination.
//!
//! Detaches side-effect-free instructions whose results have no uses,
//! iterating until no more can be removed (removing one use can expose its
//! operands as dead).

use super::Pass;
use crate::function::Function;

/// The DCE pass.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, f: &mut Function) -> bool {
        let mut changed_any = false;
        loop {
            let uses = f.use_counts();
            let mut changed = false;
            for block in &mut f.blocks {
                block.insts.retain(|iid| {
                    let inst = &f.insts[iid.idx()];
                    let dead = !inst.has_side_effect() && uses[iid.idx()] == 0;
                    if dead {
                        changed = true;
                    }
                    !dead
                });
            }
            changed_any |= changed;
            if !changed {
                return changed_any;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::types::Type;
    use crate::verify::verify_function;

    #[test]
    fn removes_unused_chains() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(1));
        let _dead1 = b.mul(x, Op::ci32(2)); // feeds dead2 only
        let _dead2 = b.add(_dead1, Op::ci32(3)); // unused
        b.ret(x);
        let mut f = b.finish();
        assert!(Dce.run(&mut f));
        assert_eq!(f.num_insts(), 1);
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::Void);
        let v = b.load(Type::I32, Op::Arg(0)); // load result unused but kept
        let _ = v;
        b.store(Op::ci32(1), Op::Arg(0));
        b.ret_void();
        let mut f = b.finish();
        assert!(!Dce.run(&mut f));
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn keeps_used_values() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(1));
        b.ret(x);
        let mut f = b.finish();
        assert!(!Dce.run(&mut f));
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn idempotent() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let _dead = b.add(Op::Arg(0), Op::ci32(1));
        b.ret(Op::ci32(0));
        let mut f = b.finish();
        assert!(Dce.run(&mut f));
        assert!(!Dce.run(&mut f));
    }
}
