//! Algebraic simplification (instcombine).
//!
//! Pattern-based peephole rewrites, a small subset of LLVM's instcombine:
//!
//! * `x + 0`, `x - 0`, `x * 1`, `x / 1`, `x & -1`, `x | 0`, `x ^ 0`,
//!   `x << 0`, `x >> 0` → `x`
//! * `x * 0`, `x & 0` → `0`
//! * `x - x`, `x ^ x` → `0`
//! * `x & x`, `x | x` → `x`
//! * `x * 2^k` → `x << k` (strength reduction; integer multiply on the
//!   PPC405 costs 4 cycles vs 1 for a shift, and the same asymmetry holds
//!   in the PivPav hardware cost model)
//! * `select c, x, x` → `x`
//!
//! Float arithmetic is left untouched: `x + 0.0` is not an identity under
//! IEEE semantics (signed zeros), matching LLVM's default (non-fast-math)
//! behaviour.

use super::Pass;
use crate::function::{Function, InstId};
use crate::inst::{BinOp, Imm, Inst, InstKind, Operand};
use std::collections::HashMap;

/// The instcombine pass.
pub struct InstCombine;

fn const_val(op: Operand) -> Option<i64> {
    op.as_const().map(|imm| imm.as_i64())
}

fn same_value(a: Operand, b: Operand) -> bool {
    match (a, b) {
        (Operand::Inst(x), Operand::Inst(y)) => x == y,
        (Operand::Arg(x), Operand::Arg(y)) => x == y,
        (Operand::Const(x), Operand::Const(y)) => x.ty == y.ty && x.bits == y.bits,
        _ => false,
    }
}

/// Attempts to simplify one instruction; returns the replacement operand or
/// a rewritten instruction.
enum Rewrite {
    /// Replace all uses with this operand.
    Value(Operand),
    /// Replace the instruction body in place.
    Inst(InstKind),
    /// Nothing to do.
    None,
}

fn simplify(inst: &Inst) -> Rewrite {
    let ty = inst.ty;
    if let InstKind::Bin(op, a, b) = &inst.kind {
        let (a, b) = (*a, *b);
        if op.is_float() {
            return Rewrite::None;
        }
        let zero = Operand::Const(Imm::int(ty, 0));
        match op {
            BinOp::Add => {
                if const_val(b) == Some(0) {
                    return Rewrite::Value(a);
                }
                if const_val(a) == Some(0) {
                    return Rewrite::Value(b);
                }
            }
            BinOp::Sub => {
                if const_val(b) == Some(0) {
                    return Rewrite::Value(a);
                }
                if same_value(a, b) {
                    return Rewrite::Value(zero);
                }
            }
            BinOp::Mul => {
                if const_val(b) == Some(1) {
                    return Rewrite::Value(a);
                }
                if const_val(a) == Some(1) {
                    return Rewrite::Value(b);
                }
                if const_val(b) == Some(0) || const_val(a) == Some(0) {
                    return Rewrite::Value(zero);
                }
                // Strength reduction: x * 2^k -> x << k.
                if let Some(c) = const_val(b) {
                    if c > 1 && (c as u64).is_power_of_two() {
                        let k = (c as u64).trailing_zeros() as i64;
                        return Rewrite::Inst(InstKind::Bin(
                            BinOp::Shl,
                            a,
                            Operand::Const(Imm::int(ty, k)),
                        ));
                    }
                }
                if let Some(c) = const_val(a) {
                    if c > 1 && (c as u64).is_power_of_two() {
                        let k = (c as u64).trailing_zeros() as i64;
                        return Rewrite::Inst(InstKind::Bin(
                            BinOp::Shl,
                            b,
                            Operand::Const(Imm::int(ty, k)),
                        ));
                    }
                }
            }
            BinOp::SDiv | BinOp::UDiv if const_val(b) == Some(1) => {
                return Rewrite::Value(a);
            }
            BinOp::And => {
                if same_value(a, b) {
                    return Rewrite::Value(a);
                }
                if const_val(b) == Some(0) || const_val(a) == Some(0) {
                    return Rewrite::Value(zero);
                }
                if const_val(b) == Some(-1) {
                    return Rewrite::Value(a);
                }
                if const_val(a) == Some(-1) {
                    return Rewrite::Value(b);
                }
            }
            BinOp::Or => {
                if same_value(a, b) {
                    return Rewrite::Value(a);
                }
                if const_val(b) == Some(0) {
                    return Rewrite::Value(a);
                }
                if const_val(a) == Some(0) {
                    return Rewrite::Value(b);
                }
            }
            BinOp::Xor => {
                if same_value(a, b) {
                    return Rewrite::Value(zero);
                }
                if const_val(b) == Some(0) {
                    return Rewrite::Value(a);
                }
                if const_val(a) == Some(0) {
                    return Rewrite::Value(b);
                }
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr if const_val(b) == Some(0) => {
                return Rewrite::Value(a);
            }
            _ => {}
        }
        return Rewrite::None;
    }
    if let InstKind::Select(_, a, b) = &inst.kind {
        if same_value(*a, *b) {
            return Rewrite::Value(*a);
        }
    }
    Rewrite::None
}

impl Pass for InstCombine {
    fn name(&self) -> &'static str {
        "instcombine"
    }

    fn run(&self, f: &mut Function) -> bool {
        let mut replace: HashMap<InstId, Operand> = HashMap::new();
        let mut rewrites: Vec<(InstId, InstKind)> = Vec::new();
        for bid in f.block_ids().collect::<Vec<_>>() {
            for &iid in &f.block(bid).insts {
                if replace.contains_key(&iid) {
                    continue;
                }
                match simplify(f.inst(iid)) {
                    Rewrite::Value(op) => {
                        replace.insert(iid, op);
                    }
                    Rewrite::Inst(kind) => rewrites.push((iid, kind)),
                    Rewrite::None => {}
                }
            }
        }
        let changed = !replace.is_empty() || !rewrites.is_empty();
        for (iid, kind) in rewrites {
            f.inst_mut(iid).kind = kind;
        }
        super::apply_replacements(f, &replace);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Operand as Op, Terminator};
    use crate::passes::dce::Dce;
    use crate::types::Type;

    fn run_to_fixpoint(f: &mut Function) {
        while InstCombine.run(f) {}
        Dce.run(f);
    }

    #[test]
    fn add_zero_identity() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(0));
        b.ret(x);
        let mut f = b.finish();
        run_to_fixpoint(&mut f);
        assert_eq!(f.num_insts(), 0);
        assert!(matches!(
            f.blocks[0].term.as_ref().unwrap(),
            Terminator::Ret(Some(Op::Arg(0)))
        ));
    }

    #[test]
    fn xor_self_is_zero() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.xor(Op::Arg(0), Op::Arg(0));
        b.ret(x);
        let mut f = b.finish();
        run_to_fixpoint(&mut f);
        match f.blocks[0].term.as_ref().unwrap() {
            Terminator::Ret(Some(Op::Const(imm))) => assert_eq!(imm.as_i64(), 0),
            other => panic!("expected ret 0, got {other:?}"),
        }
    }

    #[test]
    fn mul_pow2_becomes_shift() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::ci32(8));
        b.ret(x);
        let mut f = b.finish();
        InstCombine.run(&mut f);
        match &f.insts[0].kind {
            InstKind::Bin(BinOp::Shl, _, Op::Const(imm)) => assert_eq!(imm.as_i64(), 3),
            other => panic!("expected shl, got {other:?}"),
        }
    }

    #[test]
    fn mul_zero_collapses() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.mul(Op::Arg(0), Op::ci32(0));
        b.ret(x);
        let mut f = b.finish();
        run_to_fixpoint(&mut f);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn float_add_zero_not_touched() {
        let mut b = FunctionBuilder::new("f", vec![Type::F64], Type::F64);
        let x = b.fadd(Op::Arg(0), Op::cf64(0.0));
        b.ret(x);
        let mut f = b.finish();
        assert!(!InstCombine.run(&mut f));
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn and_all_ones_identity() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.and(Op::Arg(0), Op::ci32(-1));
        b.ret(x);
        let mut f = b.finish();
        run_to_fixpoint(&mut f);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn select_same_arms() {
        let mut b = FunctionBuilder::new("f", vec![Type::I1, Type::I32], Type::I32);
        let s = b.select(Op::Arg(0), Op::Arg(1), Op::Arg(1));
        b.ret(s);
        let mut f = b.finish();
        run_to_fixpoint(&mut f);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn sub_self_is_zero() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::ci32(5));
        let y = b.sub(x, x);
        b.ret(y);
        let mut f = b.finish();
        run_to_fixpoint(&mut f);
        match f.blocks[0].term.as_ref().unwrap() {
            Terminator::Ret(Some(Op::Const(imm))) => assert_eq!(imm.as_i64(), 0),
            other => panic!("expected ret 0, got {other:?}"),
        }
    }
}
