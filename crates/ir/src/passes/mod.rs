//! Optimization passes.
//!
//! Models the "-O3" optimization step that the paper's compile-to-bitcode
//! stage performs ("These values cover also the runtime of the standard
//! (-O3) optimizations", §IV-A). The pipeline is a classic scalar set:
//!
//! * [`constfold`] — constant folding of arithmetic/compare/select,
//! * [`instcombine`] — algebraic identities and strength reduction,
//! * [`cse`] — local (per-block) common-subexpression elimination,
//! * [`dce`] — dead code elimination,
//! * [`simplifycfg`] — unreachable-block removal and linear block merging.
//!
//! All passes preserve observable behaviour (the proptest suite checks this
//! by co-executing optimized and unoptimized modules in the VM).

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod instcombine;
pub mod simplifycfg;

use crate::function::Function;
use crate::inst::Operand;
use crate::module::Module;

/// A function-level transformation.
pub trait Pass {
    /// Short name for reporting.
    fn name(&self) -> &'static str;
    /// Runs the pass; returns true if anything changed.
    fn run(&self, f: &mut Function) -> bool;
}

/// Optimization level, mirroring the compiler flags in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Folding and DCE only.
    O1,
    /// The full pipeline, iterated to a fixpoint.
    O3,
}

/// Per-pass change counters from one [`optimize_function`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassReport {
    /// `(pass name, number of iterations in which it made a change)`.
    pub changes: Vec<(&'static str, u32)>,
    /// Total fixpoint iterations executed.
    pub iterations: u32,
}

impl PassReport {
    /// Total number of pass executions that changed something.
    pub fn total_changes(&self) -> u32 {
        self.changes.iter().map(|(_, n)| n).sum()
    }
}

fn pipeline(level: OptLevel) -> Vec<Box<dyn Pass>> {
    match level {
        OptLevel::O0 => vec![],
        OptLevel::O1 => vec![Box::new(constfold::ConstFold), Box::new(dce::Dce)],
        OptLevel::O3 => vec![
            Box::new(constfold::ConstFold),
            Box::new(instcombine::InstCombine),
            Box::new(cse::LocalCse),
            Box::new(dce::Dce),
            Box::new(simplifycfg::SimplifyCfg),
        ],
    }
}

/// Maximum fixpoint iterations; the pipeline converges in 2–3 on real code,
/// the cap only guards against pathological ping-ponging.
const MAX_ITERS: u32 = 32;

/// Optimizes one function at the given level.
pub fn optimize_function(f: &mut Function, level: OptLevel) -> PassReport {
    let passes = pipeline(level);
    let mut report = PassReport::default();
    let mut counters = vec![0u32; passes.len()];
    for _ in 0..MAX_ITERS {
        report.iterations += 1;
        let mut any = false;
        for (i, pass) in passes.iter().enumerate() {
            if pass.run(f) {
                counters[i] += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    report.changes = passes
        .iter()
        .zip(counters)
        .map(|(p, c)| (p.name(), c))
        .collect();
    report
}

/// Optimizes every function of a module.
pub fn optimize_module(m: &mut Module, level: OptLevel) -> Vec<PassReport> {
    m.funcs
        .iter_mut()
        .map(|f| optimize_function(f, level))
        .collect()
}

/// Applies replacements: substitutes every use, then detaches the replaced
/// instructions from their blocks (they are dead by construction — every
/// use was rewritten — unless they have side effects). Passes use this so
/// that `run()` returning `true` always corresponds to real IR change;
/// otherwise a fold that leaves its source attached would report "changed"
/// on every invocation and fixpoint drivers would never terminate.
pub(crate) fn apply_replacements(
    f: &mut Function,
    map: &std::collections::HashMap<crate::function::InstId, Operand>,
) {
    substitute_operands(f, map);
    if map.is_empty() {
        return;
    }
    let removable: Vec<bool> = f
        .insts
        .iter()
        .enumerate()
        .map(|(i, inst)| {
            map.contains_key(&crate::function::InstId(i as u32)) && !inst.has_side_effect()
        })
        .collect();
    for block in &mut f.blocks {
        block.insts.retain(|iid| !removable[iid.idx()]);
    }
}

/// Applies a substitution map over every operand of a function, resolving
/// chains (a→b, b→c ⇒ a→c). Used by constfold/cse/instcombine and by the
/// Woolcano binary patcher.
pub fn substitute_operands(
    f: &mut Function,
    map: &std::collections::HashMap<crate::function::InstId, Operand>,
) {
    if map.is_empty() {
        return;
    }
    let resolve = |mut op: Operand| -> Operand {
        // Chains are short; guard against accidental cycles anyway.
        for _ in 0..map.len() + 1 {
            match op {
                Operand::Inst(id) => match map.get(&id) {
                    Some(&next) => op = next,
                    None => return op,
                },
                other => return other,
            }
        }
        op
    };
    for inst in &mut f.insts {
        inst.map_operands(resolve);
    }
    for block in &mut f.blocks {
        if let Some(term) = &mut block.term {
            term.map_operands(resolve);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::types::Type;
    use crate::verify::verify_function;

    #[test]
    fn o3_converges_and_verifies() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        // (arg0 + 0) * 1 + (2 + 3)  -- lots of foldable material.
        let x = b.add(Op::Arg(0), Op::ci32(0));
        let y = b.mul(x, Op::ci32(1));
        let z = b.add(Op::ci32(2), Op::ci32(3));
        let w = b.add(y, z);
        b.ret(w);
        let mut f = b.finish();
        let before = f.num_insts();
        let report = optimize_function(&mut f, OptLevel::O3);
        assert!(verify_function(&f).is_ok());
        assert!(f.num_insts() < before);
        assert!(report.total_changes() > 0);
        assert!(report.iterations <= MAX_ITERS);
    }

    #[test]
    fn o0_is_identity() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let x = b.add(Op::ci32(1), Op::ci32(2));
        b.ret(x);
        let mut f = b.finish();
        let snapshot = f.clone();
        optimize_function(&mut f, OptLevel::O0);
        assert_eq!(f, snapshot);
    }

    #[test]
    fn substitution_resolves_chains() {
        use crate::function::InstId;
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let a = b.add(Op::ci32(1), Op::ci32(1)); // %0
        let c = b.add(a, Op::ci32(0)); // %1
        let d = b.add(c, Op::ci32(0)); // %2
        let _ = d;
        b.ret(Op::Inst(InstId(2)));
        let mut f = b.finish();
        let mut map = std::collections::HashMap::new();
        map.insert(InstId(2), Op::Inst(InstId(1)));
        map.insert(InstId(1), Op::Inst(InstId(0)));
        substitute_operands(&mut f, &map);
        // ret should now reference %0 directly.
        match f.blocks[0].term.as_ref().unwrap() {
            crate::inst::Terminator::Ret(Some(Op::Inst(id))) => assert_eq!(id.0, 0),
            other => panic!("unexpected terminator {other:?}"),
        }
    }
}
