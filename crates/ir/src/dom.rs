//! Dominator analysis.
//!
//! Implements the Cooper–Harvey–Kennedy iterative dominance algorithm over
//! the reverse post-order of the CFG. The verifier uses the dominator tree
//! to check SSA def-dominates-use; the passes use it to reason about code
//! motion safety.

use crate::function::{BlockId, Function};

/// Immediate-dominator tree for the reachable blocks of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of block b; `None` for the entry and
    /// for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order used for iteration (reachable blocks only).
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable.
    rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> DomTree {
        let nblocks = f.blocks.len();
        let rpo = f.rpo();
        let mut rpo_pos = vec![usize::MAX; nblocks];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.idx()] = i;
        }
        let preds = f.predecessors();

        let mut idom: Vec<Option<BlockId>> = vec![None; nblocks];
        if rpo.is_empty() {
            return DomTree { idom, rpo, rpo_pos };
        }
        let entry = rpo[0];
        idom[entry.idx()] = Some(entry); // sentinel: entry dominated by itself

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor (one with an idom already set).
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.idx()] {
                    if rpo_pos[p.idx()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.idx()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.idx()] != Some(ni) {
                        idom[b.idx()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Convert the entry's self-loop sentinel into None for a cleaner API.
        idom[entry.idx()] = None;
        DomTree { idom, rpo, rpo_pos }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_pos: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_pos[a.idx()] > rpo_pos[b.idx()] {
                a = idom[a.idx()].expect("intersect walked past entry");
            }
            while rpo_pos[b.idx()] > rpo_pos[a.idx()] {
                b = idom[b.idx()].expect("intersect walked past entry");
            }
        }
        a
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.idx()]
    }

    /// True iff `a` dominates `b` (reflexive: every block dominates itself).
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[a.idx()] == usize::MAX || self.rpo_pos[b.idx()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.idx()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// True if the block is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.idx()] != usize::MAX
    }

    /// The reverse post-order this tree was computed over.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Operand as Op;
    use crate::types::Type;

    /// Diamond: entry -> {a, b} -> join.
    fn diamond() -> Function {
        let mut bld = FunctionBuilder::new("d", vec![Type::I1], Type::Void);
        let a = bld.new_block("a");
        let b = bld.new_block("b");
        let join = bld.new_block("join");
        bld.cond_br(Op::Arg(0), a, b);
        bld.switch_to(a);
        bld.br(join);
        bld.switch_to(b);
        bld.br(join);
        bld.switch_to(join);
        bld.ret_void();
        bld.finish()
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let (entry, a, b, join) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(a), Some(entry));
        assert_eq!(dt.idom(b), Some(entry));
        // join's idom is the entry, not a or b.
        assert_eq!(dt.idom(join), Some(entry));
        assert!(dt.dominates(entry, join));
        assert!(!dt.dominates(a, join));
        assert!(dt.dominates(join, join));
        assert!(!dt.dominates(join, a));
    }

    #[test]
    fn loop_idoms() {
        let mut bld = FunctionBuilder::new("l", vec![Type::I32], Type::I32);
        bld.counted_loop("i", Op::ci32(0), Op::Arg(0), |_, _| {});
        bld.ret(Op::ci32(0));
        let f = bld.finish();
        let dt = DomTree::compute(&f);
        // entry(0) -> header(1) <-> body(2); header -> exit(3).
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dt.dominates(BlockId(1), BlockId(3)));
        assert!(!dt.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut bld = FunctionBuilder::new("u", vec![], Type::Void);
        let dead = bld.new_block("dead");
        bld.ret_void();
        bld.switch_to(dead);
        bld.ret_void();
        let f = bld.finish();
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(BlockId(0), dead));
        assert!(!dt.dominates(dead, BlockId(0)));
    }
}
