//! Modules and globals.

use crate::function::Function;
use crate::types::Type;

/// Index of a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl FuncId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl GlobalId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A module-level global: a named, statically sized memory region.
///
/// Accesses to globals are one of the "hardware-infeasible" instruction
/// classes the paper identifies as limiting candidate size (§V-D).
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Element type hint (for pretty-printing and typed initializers).
    pub elem_ty: Type,
    /// Optional initializer: raw little-endian bytes, zero-padded to
    /// `size` when shorter.
    pub init: Vec<u8>,
}

impl Global {
    /// A zero-initialized global of `count` elements of `elem_ty`.
    pub fn zeroed(name: impl Into<String>, elem_ty: Type, count: u32) -> Global {
        Global {
            name: name.into(),
            size: elem_ty.byte_size() * count,
            elem_ty,
            init: Vec::new(),
        }
    }

    /// A global initialized with the given f64 values.
    pub fn of_f64(name: impl Into<String>, values: &[f64]) -> Global {
        let mut init = Vec::with_capacity(values.len() * 8);
        for v in values {
            init.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Global {
            name: name.into(),
            size: (values.len() * 8) as u32,
            elem_ty: Type::F64,
            init,
        }
    }

    /// A global initialized with the given i32 values.
    pub fn of_i32(name: impl Into<String>, values: &[i32]) -> Global {
        let mut init = Vec::with_capacity(values.len() * 4);
        for v in values {
            init.extend_from_slice(&v.to_le_bytes());
        }
        Global {
            name: name.into(),
            size: (values.len() * 4) as u32,
            elem_ty: Type::I32,
            init,
        }
    }

    /// Number of elements of `elem_ty` the global holds.
    pub fn elem_count(&self) -> u32 {
        let es = self.elem_ty.byte_size().max(1);
        self.size / es
    }
}

/// A compilation unit: functions plus globals. The VM executes one module;
/// the ASIP specialization process analyzes and patches one module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name (the application name in the evaluation).
    pub name: String,
    /// Functions. `FuncId` indexes into this vector.
    pub funcs: Vec<Function>,
    /// Globals. `GlobalId` indexes into this vector.
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Immutable function access.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.idx()]
    }

    /// Mutable function access.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.idx()]
    }

    /// Immutable global access.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.idx()]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Ids of all functions.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Total basic blocks across all functions (Table I `blk` column).
    pub fn num_blocks(&self) -> usize {
        self.funcs.iter().map(|f| f.num_blocks()).sum()
    }

    /// Total instructions across all functions (Table I `ins` column).
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_constructors() {
        let g = Global::zeroed("buf", Type::I32, 10);
        assert_eq!(g.size, 40);
        assert_eq!(g.elem_count(), 10);
        assert!(g.init.is_empty());

        let g = Global::of_f64("tbl", &[1.0, 2.0]);
        assert_eq!(g.size, 16);
        assert_eq!(g.init.len(), 16);
        assert_eq!(g.elem_count(), 2);

        let g = Global::of_i32("xs", &[7, -1, 3]);
        assert_eq!(g.size, 12);
        assert_eq!(&g.init[0..4], &7i32.to_le_bytes());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("test");
        let f1 = m.add_func(Function::new("alpha", vec![], Type::Void));
        let f2 = m.add_func(Function::new("beta", vec![Type::I32], Type::I32));
        assert_eq!(m.func_by_name("alpha"), Some(f1));
        assert_eq!(m.func_by_name("beta"), Some(f2));
        assert_eq!(m.func_by_name("gamma"), None);
        assert_eq!(m.func(f2).params.len(), 1);
        assert_eq!(m.func_ids().count(), 2);
    }

    #[test]
    fn module_counts_aggregate() {
        let mut m = Module::new("agg");
        m.add_func(Function::new("a", vec![], Type::Void));
        m.add_func(Function::new("b", vec![], Type::Void));
        // Each new function starts with exactly one (empty) entry block.
        assert_eq!(m.num_blocks(), 2);
        assert_eq!(m.num_insts(), 0);
    }
}
