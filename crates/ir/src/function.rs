//! Functions and basic blocks.

use crate::inst::{Inst, InstKind, Operand, Terminator};
use crate::types::Type;

/// Index of an instruction in a function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl InstId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Debug name (e.g. `entry`, `loop.body`).
    pub name: String,
    /// Instructions in execution order (ids into [`Function::insts`]).
    pub insts: Vec<InstId>,
    /// The terminator. `None` only transiently during construction; a
    /// verified function always has one.
    pub term: Option<Terminator>,
}

impl Block {
    /// Terminator, panicking if the block is unterminated.
    pub fn terminator(&self) -> &Terminator {
        self.term
            .as_ref()
            .expect("block has no terminator (unfinished construction?)")
    }

    /// Number of instructions (excluding the terminator).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A function: parameters, a return type, an instruction arena, and a CFG
/// of basic blocks. Block 0 is the entry block.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type (`Void` for procedures).
    pub ret: Type,
    /// Instruction arena. Blocks reference instructions by [`InstId`];
    /// instructions removed by passes stay in the arena but are detached
    /// from all blocks.
    pub insts: Vec<Inst>,
    /// Basic blocks. Index 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Creates an empty function with a single unterminated entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            insts: Vec::new(),
            blocks: vec![Block {
                name: "entry".into(),
                insts: Vec::new(),
                term: None,
            }],
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Immutable instruction access.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.idx()]
    }

    /// Mutable instruction access.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.idx()]
    }

    /// Immutable block access.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.idx()]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.idx()]
    }

    /// Ids of all blocks.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total number of instructions attached to blocks (the paper's `ins`
    /// column counts these, not arena slots).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Appends an instruction to the arena and to the given block,
    /// returning its id.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[block.idx()].insts.push(id);
        id
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bid in self.block_ids() {
            if let Some(term) = &self.block(bid).term {
                for succ in term.successors() {
                    preds[succ.idx()].push(bid);
                }
            }
        }
        preds
    }

    /// Reverse post-order of blocks reachable from the entry.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry(), 0)];
        visited[self.entry().idx()] = true;
        while let Some(&mut (bid, ref mut next)) = stack.last_mut() {
            let succs = self
                .block(bid)
                .term
                .as_ref()
                .map(|t| t.successors())
                .unwrap_or_default();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.idx()] {
                    visited[s.idx()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(bid);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Blocks unreachable from the entry.
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        let reachable: std::collections::HashSet<BlockId> = self.rpo().into_iter().collect();
        self.block_ids()
            .filter(|b| !reachable.contains(b))
            .collect()
    }

    /// The block containing each instruction (None for detached arena
    /// entries). O(n) scan; used by the verifier and the DFG builder.
    pub fn inst_blocks(&self) -> Vec<Option<BlockId>> {
        let mut owner = vec![None; self.insts.len()];
        for bid in self.block_ids() {
            for &iid in &self.block(bid).insts {
                owner[iid.idx()] = Some(bid);
            }
        }
        owner
    }

    /// Use-counts of every instruction result (uses in instructions and
    /// terminators of attached blocks).
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.insts.len()];
        let mut bump = |op: Operand| {
            if let Operand::Inst(id) = op {
                counts[id.idx()] += 1;
            }
        };
        for bid in self.block_ids() {
            for &iid in &self.block(bid).insts {
                for op in self.inst(iid).operands() {
                    bump(op);
                }
            }
            if let Some(term) = &self.block(bid).term {
                for op in term.operands() {
                    bump(op);
                }
            }
        }
        counts
    }

    /// True if any attached instruction is a phi referencing `block` as an
    /// incoming edge (used by CFG simplification to preserve phi sanity).
    pub fn block_feeds_phi(&self, block: BlockId) -> bool {
        for bid in self.block_ids() {
            for &iid in &self.block(bid).insts {
                if let InstKind::Phi(incoming) = &self.inst(iid).kind {
                    if incoming.iter().any(|(b, _)| *b == block) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Imm};

    fn simple_fn() -> Function {
        // entry: x = 1+2; br b1
        // b1: ret x
        let mut f = Function::new("t", vec![], Type::I32);
        let x = f.push_inst(
            BlockId(0),
            Inst {
                kind: InstKind::Bin(
                    BinOp::Add,
                    Operand::Const(Imm::i32(1)),
                    Operand::Const(Imm::i32(2)),
                ),
                ty: Type::I32,
            },
        );
        f.blocks.push(Block {
            name: "b1".into(),
            insts: vec![],
            term: Some(Terminator::Ret(Some(Operand::Inst(x)))),
        });
        f.block_mut(BlockId(0)).term = Some(Terminator::Br(BlockId(1)));
        f
    }

    #[test]
    fn counts() {
        let f = simple_fn();
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.num_insts(), 1);
        assert_eq!(f.use_counts()[0], 1);
    }

    #[test]
    fn predecessors_and_rpo() {
        let f = simple_fn();
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(f.rpo(), vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn unreachable_detection() {
        let mut f = simple_fn();
        f.blocks.push(Block {
            name: "dead".into(),
            insts: vec![],
            term: Some(Terminator::Ret(None)),
        });
        assert_eq!(f.unreachable_blocks(), vec![BlockId(2)]);
    }

    #[test]
    fn inst_owner_map() {
        let f = simple_fn();
        let owners = f.inst_blocks();
        assert_eq!(owners[0], Some(BlockId(0)));
    }

    #[test]
    fn rpo_on_diamond() {
        // entry -> a, b; a -> join; b -> join.
        let mut f = Function::new("d", vec![], Type::Void);
        for name in ["a", "b", "join"] {
            f.blocks.push(Block {
                name: name.into(),
                insts: vec![],
                term: None,
            });
        }
        f.block_mut(BlockId(0)).term = Some(Terminator::CondBr(
            Operand::Const(Imm::bool(true)),
            BlockId(1),
            BlockId(2),
        ));
        f.block_mut(BlockId(1)).term = Some(Terminator::Br(BlockId(3)));
        f.block_mut(BlockId(2)).term = Some(Terminator::Br(BlockId(3)));
        f.block_mut(BlockId(3)).term = Some(Terminator::Ret(None));
        let rpo = f.rpo();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
        // join must come after both a and b.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }
}
