//! Instructions, operands, and terminators.

use crate::function::{BlockId, InstId};
use crate::module::{FuncId, GlobalId};
use crate::types::Type;

/// An immediate constant with an explicit type.
///
/// Bits are stored raw in a `u64`; integer immediates are interpreted
/// through [`Type::sext`], floats through their IEEE bit pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imm {
    /// Value type.
    pub ty: Type,
    /// Raw bit pattern (low `ty.bits()` bits are significant).
    pub bits: u64,
}

impl Imm {
    /// Integer immediate of the given type (truncated to the type width).
    pub fn int(ty: Type, v: i64) -> Imm {
        debug_assert!(ty.is_int(), "Imm::int with non-integer type {ty}");
        Imm {
            ty,
            bits: ty.trunc(v),
        }
    }

    /// `i32` immediate.
    pub fn i32(v: i32) -> Imm {
        Imm::int(Type::I32, v as i64)
    }

    /// `i64` immediate.
    pub fn i64(v: i64) -> Imm {
        Imm::int(Type::I64, v)
    }

    /// `i1` (boolean) immediate.
    pub fn bool(v: bool) -> Imm {
        Imm::int(Type::I1, v as i64)
    }

    /// `f32` immediate.
    pub fn f32(v: f32) -> Imm {
        Imm {
            ty: Type::F32,
            bits: v.to_bits() as u64,
        }
    }

    /// `f64` immediate.
    pub fn f64(v: f64) -> Imm {
        Imm {
            ty: Type::F64,
            bits: v.to_bits(),
        }
    }

    /// Signed integer interpretation.
    pub fn as_i64(self) -> i64 {
        self.ty.sext(self.bits)
    }

    /// Float interpretation (valid only for float types).
    pub fn as_f64(self) -> f64 {
        match self.ty {
            Type::F32 => f32::from_bits(self.bits as u32) as f64,
            Type::F64 => f64::from_bits(self.bits),
            _ => panic!("as_f64 on non-float immediate {self:?}"),
        }
    }
}

/// An operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// The result of another instruction in the same function.
    Inst(InstId),
    /// A function parameter (by index).
    Arg(u32),
    /// An immediate constant.
    Const(Imm),
}

impl Operand {
    /// Shorthand for an `i32` constant operand.
    pub fn ci32(v: i32) -> Operand {
        Operand::Const(Imm::i32(v))
    }

    /// Shorthand for an `i64` constant operand.
    pub fn ci64(v: i64) -> Operand {
        Operand::Const(Imm::i64(v))
    }

    /// Shorthand for an `f64` constant operand.
    pub fn cf64(v: f64) -> Operand {
        Operand::Const(Imm::f64(v))
    }

    /// Returns the instruction id if this is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Operand::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the immediate if this is a constant.
    pub fn as_const(self) -> Option<Imm> {
        match self {
            Operand::Const(imm) => Some(imm),
            _ => None,
        }
    }

    /// True if this is a constant operand.
    pub fn is_const(self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

impl From<InstId> for Operand {
    fn from(id: InstId) -> Operand {
        Operand::Inst(id)
    }
}

/// Binary operators (LLVM's arithmetic/logic instruction set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Signed division.
    SDiv,
    /// Unsigned division.
    UDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned remainder.
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
}

impl BinOp {
    /// True for the float family.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// True if `a op b == b op a`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Unary operators: negation and the cast family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Float negation.
    FNeg,
    /// Integer truncation to a narrower type.
    Trunc,
    /// Zero extension to a wider type.
    ZExt,
    /// Sign extension to a wider type.
    SExt,
    /// Float → signed integer.
    FpToSi,
    /// Signed integer → float.
    SiToFp,
    /// f32 → f64.
    FpExt,
    /// f64 → f32.
    FpTrunc,
}

impl UnOp {
    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::Trunc => "trunc",
            UnOp::ZExt => "zext",
            UnOp::SExt => "sext",
            UnOp::FpToSi => "fptosi",
            UnOp::SiToFp => "sitofp",
            UnOp::FpExt => "fpext",
            UnOp::FpTrunc => "fptrunc",
        }
    }
}

/// Comparison predicates (result type `i1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// Integer equal.
    Eq,
    /// Integer not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
    /// Float ordered equal.
    FOeq,
    /// Float ordered not-equal.
    FOne,
    /// Float ordered less-than.
    FOlt,
    /// Float ordered less-or-equal.
    FOle,
    /// Float ordered greater-than.
    FOgt,
    /// Float ordered greater-or-equal.
    FOge,
}

impl CmpOp {
    /// True for float predicates.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            CmpOp::FOeq | CmpOp::FOne | CmpOp::FOlt | CmpOp::FOle | CmpOp::FOgt | CmpOp::FOge
        )
    }

    /// Printer mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "icmp.eq",
            CmpOp::Ne => "icmp.ne",
            CmpOp::Slt => "icmp.slt",
            CmpOp::Sle => "icmp.sle",
            CmpOp::Sgt => "icmp.sgt",
            CmpOp::Sge => "icmp.sge",
            CmpOp::Ult => "icmp.ult",
            CmpOp::Ule => "icmp.ule",
            CmpOp::Ugt => "icmp.ugt",
            CmpOp::Uge => "icmp.uge",
            CmpOp::FOeq => "fcmp.oeq",
            CmpOp::FOne => "fcmp.one",
            CmpOp::FOlt => "fcmp.olt",
            CmpOp::FOle => "fcmp.ole",
            CmpOp::FOgt => "fcmp.ogt",
            CmpOp::FOge => "fcmp.oge",
        }
    }
}

/// External functions the VM provides (libm subset).
///
/// These model calls that LLVM bitcode makes into the C math library; they
/// are *hardware-infeasible* from the ISE perspective, like any call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtFunc {
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Arc tangent.
    Atan,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Power.
    Pow,
    /// Absolute value (float).
    Fabs,
    /// Floor.
    Floor,
}

impl ExtFunc {
    /// Printer mnemonic / linkage name.
    pub fn name(self) -> &'static str {
        match self {
            ExtFunc::Sqrt => "sqrt",
            ExtFunc::Sin => "sin",
            ExtFunc::Cos => "cos",
            ExtFunc::Atan => "atan",
            ExtFunc::Exp => "exp",
            ExtFunc::Log => "log",
            ExtFunc::Pow => "pow",
            ExtFunc::Fabs => "fabs",
            ExtFunc::Floor => "floor",
        }
    }
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Two-operand arithmetic/logic.
    Bin(BinOp, Operand, Operand),
    /// One-operand arithmetic or cast (result type is `Inst::ty`).
    Un(UnOp, Operand),
    /// Comparison producing `i1`.
    Cmp(CmpOp, Operand, Operand),
    /// `cond ? a : b`.
    Select(Operand, Operand, Operand),
    /// Memory load from an address.
    Load(Operand),
    /// Memory store `(value, address)`; produces no result.
    Store(Operand, Operand),
    /// Address arithmetic: `base + index * elem_bytes` (a flattened GEP).
    Gep {
        /// Base pointer.
        base: Operand,
        /// Element index.
        index: Operand,
        /// Element size in bytes.
        elem_bytes: u32,
    },
    /// Stack allocation of `bytes` bytes; produces a pointer.
    Alloca(u32),
    /// Address of a module global; produces a pointer.
    GlobalAddr(GlobalId),
    /// Call to another function in the module.
    Call(FuncId, Vec<Operand>),
    /// Call to an external math function.
    CallExt(ExtFunc, Vec<Operand>),
    /// SSA phi node: one incoming operand per predecessor block.
    Phi(Vec<(BlockId, Operand)>),
    /// Invocation of a loaded Woolcano custom instruction. The `u32` is the
    /// CI slot handle assigned by the reconfiguration controller.
    Custom(u32, Vec<Operand>),
}

/// An instruction: an operation plus its result type.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// Result type (`Void` for stores).
    pub ty: Type,
}

/// Flat opcode classification used by the ISE algorithms and the PivPav
/// database (which keys IP cores by opcode × width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// A binary ALU operation.
    Bin(BinOp),
    /// A unary/cast operation.
    Un(UnOp),
    /// A comparison.
    Cmp(CmpOp),
    /// A select (2:1 mux in hardware).
    Select,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Address arithmetic.
    Gep,
    /// Stack allocation.
    Alloca,
    /// Global address materialization.
    GlobalAddr,
    /// Intra-module call.
    Call,
    /// External (libm) call.
    CallExt,
    /// Phi node.
    Phi,
    /// Custom instruction invocation.
    Custom,
}

impl Inst {
    /// Flat opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        match &self.kind {
            InstKind::Bin(op, ..) => Opcode::Bin(*op),
            InstKind::Un(op, ..) => Opcode::Un(*op),
            InstKind::Cmp(op, ..) => Opcode::Cmp(*op),
            InstKind::Select(..) => Opcode::Select,
            InstKind::Load(..) => Opcode::Load,
            InstKind::Store(..) => Opcode::Store,
            InstKind::Gep { .. } => Opcode::Gep,
            InstKind::Alloca(..) => Opcode::Alloca,
            InstKind::GlobalAddr(..) => Opcode::GlobalAddr,
            InstKind::Call(..) => Opcode::Call,
            InstKind::CallExt(..) => Opcode::CallExt,
            InstKind::Phi(..) => Opcode::Phi,
            InstKind::Custom(..) => Opcode::Custom,
        }
    }

    /// All operands, in order.
    pub fn operands(&self) -> Vec<Operand> {
        match &self.kind {
            InstKind::Bin(_, a, b) | InstKind::Cmp(_, a, b) => vec![*a, *b],
            InstKind::Un(_, a) | InstKind::Load(a) => vec![*a],
            InstKind::Select(c, a, b) => vec![*c, *a, *b],
            InstKind::Store(v, p) => vec![*v, *p],
            InstKind::Gep { base, index, .. } => vec![*base, *index],
            InstKind::Alloca(_) | InstKind::GlobalAddr(_) => vec![],
            InstKind::Call(_, args) | InstKind::CallExt(_, args) | InstKind::Custom(_, args) => {
                args.clone()
            }
            InstKind::Phi(incoming) => incoming.iter().map(|(_, op)| *op).collect(),
        }
    }

    /// Rewrites every operand through `f` (used by optimization passes and
    /// the Woolcano binary patcher).
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match &mut self.kind {
            InstKind::Bin(_, a, b) | InstKind::Cmp(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Un(_, a) | InstKind::Load(a) => *a = f(*a),
            InstKind::Select(c, a, b) => {
                *c = f(*c);
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Store(v, p) => {
                *v = f(*v);
                *p = f(*p);
            }
            InstKind::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            InstKind::Alloca(_) | InstKind::GlobalAddr(_) => {}
            InstKind::Call(_, args) | InstKind::CallExt(_, args) | InstKind::Custom(_, args) => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstKind::Phi(incoming) => {
                for (_, op) in incoming {
                    *op = f(*op);
                }
            }
        }
    }

    /// True if the instruction has a side effect or touches memory and thus
    /// must not be removed by DCE even when its result is unused.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Store(..)
                | InstKind::Call(..)
                | InstKind::CallExt(..)
                | InstKind::Load(..)
                | InstKind::Alloca(..)
                | InstKind::Custom(..)
        )
    }

    /// True if the instruction produces a value.
    pub fn has_result(&self) -> bool {
        self.ty.is_value()
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Br(BlockId),
    /// Two-way conditional branch on an `i1` operand.
    CondBr(Operand, BlockId, BlockId),
    /// Multi-way dispatch: `(value, cases, default)`.
    Switch(Operand, Vec<(i64, BlockId)>, BlockId),
    /// Function return (operand present iff the function returns a value).
    Ret(Option<Operand>),
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(t) => vec![*t],
            Terminator::CondBr(_, a, b) => vec![*a, *b],
            Terminator::Switch(_, cases, default) => {
                let mut out: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                out.push(*default);
                out
            }
            Terminator::Ret(_) => vec![],
        }
    }

    /// Value operands read by the terminator.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Terminator::Br(_) => vec![],
            Terminator::CondBr(c, ..) => vec![*c],
            Terminator::Switch(v, ..) => vec![*v],
            Terminator::Ret(v) => v.iter().copied().collect(),
        }
    }

    /// Rewrites terminator operands through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Terminator::Br(_) => {}
            Terminator::CondBr(c, ..) => *c = f(*c),
            Terminator::Switch(v, ..) => *v = f(*v),
            Terminator::Ret(Some(v)) => *v = f(*v),
            Terminator::Ret(None) => {}
        }
    }

    /// Rewrites successor block ids through `f` (CFG simplification).
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br(t) => *t = f(*t),
            Terminator::CondBr(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Terminator::Switch(_, cases, default) => {
                for (_, b) in cases {
                    *b = f(*b);
                }
                *default = f(*default);
            }
            Terminator::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_int_respects_width() {
        let imm = Imm::int(Type::I8, 300);
        assert_eq!(imm.bits, 300 & 0xff);
        assert_eq!(imm.as_i64(), Type::I8.sext(300 & 0xff));
        assert_eq!(Imm::i32(-1).as_i64(), -1);
        assert_eq!(Imm::bool(true).as_i64(), -1); // i1 sext
    }

    #[test]
    fn imm_float_roundtrip() {
        assert_eq!(Imm::f64(3.5).as_f64(), 3.5);
        assert_eq!(Imm::f32(1.25).as_f64(), 1.25);
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Xor.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(BinOp::FMul.is_commutative());
        assert!(!BinOp::FDiv.is_commutative());
    }

    #[test]
    fn operand_accessors() {
        let op = Operand::ci32(7);
        assert!(op.is_const());
        assert_eq!(op.as_const().unwrap().as_i64(), 7);
        assert!(op.as_inst().is_none());
        let op: Operand = InstId(3).into();
        assert_eq!(op.as_inst(), Some(InstId(3)));
    }

    #[test]
    fn inst_operand_enumeration() {
        let i = Inst {
            kind: InstKind::Select(Operand::ci32(1), Operand::ci32(2), Operand::ci32(3)),
            ty: Type::I32,
        };
        assert_eq!(i.operands().len(), 3);
        assert_eq!(i.opcode(), Opcode::Select);
        let s = Inst {
            kind: InstKind::Store(Operand::ci32(0), Operand::Arg(0)),
            ty: Type::Void,
        };
        assert!(s.has_side_effect());
        assert!(!s.has_result());
    }

    #[test]
    fn map_operands_rewrites_all() {
        let mut i = Inst {
            kind: InstKind::Bin(
                BinOp::Add,
                Operand::Inst(InstId(1)),
                Operand::Inst(InstId(2)),
            ),
            ty: Type::I32,
        };
        i.map_operands(|_| Operand::ci32(9));
        assert!(i.operands().iter().all(|o| o.is_const()));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Switch(
            Operand::ci32(0),
            vec![(1, BlockId(1)), (2, BlockId(2))],
            BlockId(3),
        );
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn terminator_map_targets() {
        let mut t = Terminator::CondBr(Operand::ci32(1), BlockId(0), BlockId(1));
        t.map_targets(|b| BlockId(b.0 + 10));
        assert_eq!(t.successors(), vec![BlockId(10), BlockId(11)]);
    }
}
