//! Function construction API.
//!
//! [`FunctionBuilder`] is how the benchmark applications (and tests) write
//! IR. It tracks a current insertion block, infers result types from
//! operands, and supports two-phase phi construction for loops.

use crate::function::{Block, BlockId, Function, InstId};
use crate::inst::{BinOp, CmpOp, ExtFunc, Inst, InstKind, Operand, Terminator, UnOp};
use crate::module::{FuncId, GlobalId};
use crate::types::Type;

/// Builder over a [`Function`] under construction.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Starts a new function. The insertion point is the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        let func = Function::new(name, params, ret);
        FunctionBuilder {
            func,
            cur: BlockId(0),
        }
    }

    /// The type of an operand in the context of this function.
    pub fn ty_of(&self, op: Operand) -> Type {
        match op {
            Operand::Inst(id) => self.func.inst(id).ty,
            Operand::Arg(i) => self.func.params[i as usize],
            Operand::Const(imm) => imm.ty,
        }
    }

    /// Creates a new (unterminated) block and returns its id without moving
    /// the insertion point.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            name: name.into(),
            insts: Vec::new(),
            term: None,
        });
        id
    }

    /// Moves the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Pushes a raw instruction at the insertion point.
    pub fn push(&mut self, kind: InstKind, ty: Type) -> InstId {
        debug_assert!(
            self.func.block(self.cur).term.is_none(),
            "appending to a terminated block {:?}",
            self.cur
        );
        self.func.push_inst(self.cur, Inst { kind, ty })
    }

    // ---- arithmetic -----------------------------------------------------

    /// Generic binary operation; the result type is taken from `a`.
    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand) -> Operand {
        let ty = self.ty_of(a);
        Operand::Inst(self.push(InstKind::Bin(op, a, b), ty))
    }

    /// Integer add.
    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Add, a, b)
    }

    /// Integer subtract.
    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Sub, a, b)
    }

    /// Integer multiply.
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Mul, a, b)
    }

    /// Signed divide.
    pub fn sdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::SDiv, a, b)
    }

    /// Signed remainder.
    pub fn srem(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::SRem, a, b)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::And, a, b)
    }

    /// Bitwise or.
    pub fn or(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Or, a, b)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Xor, a, b)
    }

    /// Shift left.
    pub fn shl(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Shl, a, b)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::LShr, a, b)
    }

    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::AShr, a, b)
    }

    /// Float add.
    pub fn fadd(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FAdd, a, b)
    }

    /// Float subtract.
    pub fn fsub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FSub, a, b)
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FMul, a, b)
    }

    /// Float divide.
    pub fn fdiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::FDiv, a, b)
    }

    /// Unary operation with explicit result type (casts change type).
    pub fn un(&mut self, op: UnOp, a: Operand, ty: Type) -> Operand {
        Operand::Inst(self.push(InstKind::Un(op, a), ty))
    }

    /// Integer negation.
    pub fn neg(&mut self, a: Operand) -> Operand {
        let ty = self.ty_of(a);
        self.un(UnOp::Neg, a, ty)
    }

    /// Sign extension.
    pub fn sext(&mut self, a: Operand, ty: Type) -> Operand {
        self.un(UnOp::SExt, a, ty)
    }

    /// Zero extension.
    pub fn zext(&mut self, a: Operand, ty: Type) -> Operand {
        self.un(UnOp::ZExt, a, ty)
    }

    /// Truncation.
    pub fn trunc(&mut self, a: Operand, ty: Type) -> Operand {
        self.un(UnOp::Trunc, a, ty)
    }

    /// Signed int → float.
    pub fn sitofp(&mut self, a: Operand, ty: Type) -> Operand {
        self.un(UnOp::SiToFp, a, ty)
    }

    /// Float → signed int.
    pub fn fptosi(&mut self, a: Operand, ty: Type) -> Operand {
        self.un(UnOp::FpToSi, a, ty)
    }

    /// Comparison (result `i1`).
    pub fn cmp(&mut self, op: CmpOp, a: Operand, b: Operand) -> Operand {
        Operand::Inst(self.push(InstKind::Cmp(op, a, b), Type::I1))
    }

    /// Select `cond ? a : b`.
    pub fn select(&mut self, cond: Operand, a: Operand, b: Operand) -> Operand {
        let ty = self.ty_of(a);
        Operand::Inst(self.push(InstKind::Select(cond, a, b), ty))
    }

    // ---- memory ---------------------------------------------------------

    /// Load a value of type `ty` from `addr`.
    pub fn load(&mut self, ty: Type, addr: Operand) -> Operand {
        Operand::Inst(self.push(InstKind::Load(addr), ty))
    }

    /// Store `value` to `addr`.
    pub fn store(&mut self, value: Operand, addr: Operand) {
        self.push(InstKind::Store(value, addr), Type::Void);
    }

    /// Address arithmetic: `base + index * elem_bytes`.
    pub fn gep(&mut self, base: Operand, index: Operand, elem_bytes: u32) -> Operand {
        Operand::Inst(self.push(
            InstKind::Gep {
                base,
                index,
                elem_bytes,
            },
            Type::Ptr,
        ))
    }

    /// Stack allocation.
    pub fn alloca(&mut self, bytes: u32) -> Operand {
        Operand::Inst(self.push(InstKind::Alloca(bytes), Type::Ptr))
    }

    /// Address of a module global.
    pub fn global_addr(&mut self, g: GlobalId) -> Operand {
        Operand::Inst(self.push(InstKind::GlobalAddr(g), Type::Ptr))
    }

    // ---- calls ----------------------------------------------------------

    /// Call a module function; `ret` must match the callee signature.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>, ret: Type) -> Operand {
        Operand::Inst(self.push(InstKind::Call(callee, args), ret))
    }

    /// Call an external math function (always returns `f64`).
    pub fn call_ext(&mut self, f: ExtFunc, args: Vec<Operand>) -> Operand {
        Operand::Inst(self.push(InstKind::CallExt(f, args), Type::F64))
    }

    // ---- phi ------------------------------------------------------------

    /// Creates an empty phi of type `ty`; incoming edges are added later
    /// with [`Self::add_incoming`]. Phis must precede non-phi instructions
    /// in their block (the verifier enforces this), so create them first.
    pub fn phi(&mut self, ty: Type) -> Operand {
        Operand::Inst(self.push(InstKind::Phi(Vec::new()), ty))
    }

    /// Adds an incoming `(block, value)` edge to a phi created earlier.
    pub fn add_incoming(&mut self, phi: Operand, from: BlockId, value: Operand) {
        let id = phi.as_inst().expect("add_incoming on non-instruction");
        match &mut self.func.inst_mut(id).kind {
            InstKind::Phi(incoming) => incoming.push((from, value)),
            other => panic!("add_incoming on non-phi {other:?}"),
        }
    }

    // ---- terminators ----------------------------------------------------

    fn terminate(&mut self, term: Terminator) {
        let block = self.func.block_mut(self.cur);
        debug_assert!(
            block.term.is_none(),
            "block {:?} already terminated",
            self.cur
        );
        block.term = Some(term);
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_b: BlockId, else_b: BlockId) {
        self.terminate(Terminator::CondBr(cond, then_b, else_b));
    }

    /// Switch dispatch.
    pub fn switch(&mut self, value: Operand, cases: Vec<(i64, BlockId)>, default: BlockId) {
        self.terminate(Terminator::Switch(value, cases, default));
    }

    /// Return a value.
    pub fn ret(&mut self, value: Operand) {
        self.terminate(Terminator::Ret(Some(value)));
    }

    /// Return void.
    pub fn ret_void(&mut self) {
        self.terminate(Terminator::Ret(None));
    }

    // ---- loop sugar -----------------------------------------------------

    /// Builds a canonical counted loop:
    ///
    /// * creates `header`, `body`, and `exit` blocks,
    /// * a phi `i` running from `start` (exclusive of `end`) stepping by 1,
    /// * invokes `body_fn(builder, i)` to emit the body,
    /// * leaves the insertion point in `exit`,
    /// * returns the induction-variable operand.
    ///
    /// The current block falls through into the header.
    pub fn counted_loop(
        &mut self,
        name: &str,
        start: Operand,
        end: Operand,
        body_fn: impl FnOnce(&mut Self, Operand),
    ) -> Operand {
        let header = self.new_block(format!("{name}.header"));
        let body = self.new_block(format!("{name}.body"));
        let exit = self.new_block(format!("{name}.exit"));
        let preheader = self.current();
        self.br(header);

        self.switch_to(header);
        let ty = self.ty_of(start);
        let i = self.phi(ty);
        self.add_incoming(i, preheader, start);
        let done = self.cmp(CmpOp::Slt, i, end);
        self.cond_br(done, body, exit);

        self.switch_to(body);
        body_fn(self, i);
        // The body callback may have moved the insertion point (nested
        // loops); the latch is wherever it ended up.
        let latch = self.current();
        let next = self.add(i, Operand::Const(crate::inst::Imm::int(ty, 1)));
        self.add_incoming(i, latch, next);
        self.br(header);

        self.switch_to(exit);
        i
    }

    /// Finishes construction and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand as Op;

    #[test]
    fn builds_straight_line() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32, Type::I32], Type::I32);
        let x = b.add(Op::Arg(0), Op::Arg(1));
        let y = b.mul(x, Op::ci32(3));
        b.ret(y);
        let f = b.finish();
        assert_eq!(f.num_insts(), 2);
        assert_eq!(f.num_blocks(), 1);
        assert!(matches!(
            f.block(BlockId(0)).terminator(),
            Terminator::Ret(Some(_))
        ));
    }

    #[test]
    fn type_inference_from_lhs() {
        let mut b = FunctionBuilder::new("f", vec![Type::F64], Type::F64);
        let x = b.fadd(Op::Arg(0), Op::cf64(1.0));
        assert_eq!(b.ty_of(x), Type::F64);
        let c = b.cmp(CmpOp::FOlt, x, Op::cf64(10.0));
        assert_eq!(b.ty_of(c), Type::I1);
        b.ret(x);
    }

    #[test]
    fn counted_loop_structure() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let acc_cell = b.alloca(4);
        b.store(Op::ci32(0), acc_cell);
        b.counted_loop("i", Op::ci32(0), Op::Arg(0), |b, i| {
            let acc = b.load(Type::I32, acc_cell);
            let acc2 = b.add(acc, i);
            b.store(acc2, acc_cell);
        });
        let out = b.load(Type::I32, acc_cell);
        b.ret(out);
        let f = b.finish();
        // entry + header + body + exit
        assert_eq!(f.num_blocks(), 4);
        // Every block except maybe the unterminated current must have terms.
        assert!(f.blocks.iter().all(|blk| blk.term.is_some()));
        // The header must contain a phi with two incomings.
        let header = f.block(BlockId(1));
        let phi = f.inst(header.insts[0]);
        match &phi.kind {
            InstKind::Phi(inc) => assert_eq!(inc.len(), 2),
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-phi")]
    fn add_incoming_rejects_non_phi() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let x = b.add(Op::ci32(1), Op::ci32(2));
        b.add_incoming(x, BlockId(0), Op::ci32(0));
    }

    #[test]
    fn memory_ops() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], Type::I32);
        let p = b.gep(Op::Arg(0), Op::ci32(4), 4);
        let v = b.load(Type::I32, p);
        b.store(v, Op::Arg(0));
        b.ret(v);
        let f = b.finish();
        assert_eq!(f.num_insts(), 3);
        assert_eq!(b_ty(&f, 0), Type::Ptr);

        fn b_ty(f: &Function, i: u32) -> Type {
            f.inst(InstId(i)).ty
        }
    }
}
