//! Index-ordered parallel map over a shared slice.
//!
//! The CAD scheduler in `jitise-core` fans independent candidate
//! implementations out to a small pool of OS threads, but every consumer
//! of the results (report rows, telemetry finalization, IR patching)
//! requires *selection order* — the order items appear in the input —
//! regardless of which worker finished first. [`parallel_map_indexed`]
//! provides exactly that contract: results come back indexed by input
//! position, never by completion time, so the caller cannot observe the
//! scheduling interleaving through the return value.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item of `items` on up to `workers` OS threads and
/// returns the results **in input order**.
///
/// Work is handed out by an atomic index, so threads stay busy while long
/// and short items mix; each result is stored at its input position. With
/// `workers <= 1` (or fewer than two items) no thread is spawned and the
/// map runs sequentially on the caller — the two paths are observationally
/// identical for any pure `f`.
///
/// A panic inside `f` propagates to the caller once all threads have
/// finished (via `std::thread::scope`).
pub fn parallel_map_indexed<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let threads = workers.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *slots[i].lock() = Some(f(i, &items[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn maps_in_input_order_sequentially() {
        let items = vec![3u64, 1, 4, 1, 5];
        let out = parallel_map_indexed(1, &items, |i, &v| (i, v * 10));
        assert_eq!(out, vec![(0, 30), (1, 10), (2, 40), (3, 10), (4, 50)]);
    }

    #[test]
    fn shuffled_completion_order_does_not_reorder_results() {
        // Earlier items sleep longest, so completion order is roughly the
        // reverse of input order — results must still come back by index.
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map_indexed(4, &items, |i, &v| {
            assert_eq!(i, v);
            std::thread::sleep(Duration::from_millis(((8 - v) * 3) as u64));
            v * 2
        });
        assert_eq!(out, (0..8).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_counts_agree() {
        let items: Vec<u64> = (0..40).collect();
        let seq = parallel_map_indexed(1, &items, |i, &v| v.wrapping_mul(i as u64 + 7));
        for workers in [2, 4, 16, 64] {
            let par = parallel_map_indexed(workers, &items, |i, &v| v.wrapping_mul(i as u64 + 7));
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_item_take_the_sequential_path() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map_indexed(8, &none, |_, &v| v).is_empty());
        assert_eq!(parallel_map_indexed(8, &[9u32], |i, &v| v + i as u32), [9]);
    }
}
