//! A minimal JSON value model with a writer and a parser.
//!
//! The workspace deliberately carries no serde dependency (it must build
//! offline), but the perf-trajectory artifacts (`BENCH_*.json`) need to be
//! both *written* and *read back* — the regression gate parses a committed
//! baseline and compares it against a fresh run. This module provides the
//! smallest JSON round-trip that keeps integers exact:
//!
//! * Integers parse into [`Json::U64`] / [`Json::I64`], never through
//!   `f64` — simulated-time nanoseconds exceed 2^53 for long runs and the
//!   regression gate compares them bit-for-bit.
//! * Floats are written with Rust's shortest round-trip `Display` plus a
//!   forced `.0` when the rendering would look integral, so a value's
//!   variant is stable across a write → parse → write cycle.
//! * Object key order is preserved (insertion order), making output
//!   deterministic without sorting surprises.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Any number written with a fraction or exponent.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (integral `I64`/`F64` values are not coerced:
    /// the perf schema stores exact metrics as unsigned integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen lossily past 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Writes the value compactly into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Writes the value with two-space indentation (for committed
    /// artifacts, where humans read the diffs).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    x.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// The compact rendering as a fresh `String`.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// The pretty rendering as a fresh `String` (trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s.push('\n');
        s
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Writes `value` so that parsing reproduces the same variant: shortest
/// round-trip `Display`, with `.0` appended when the rendering carries no
/// fraction or exponent. Non-finite values render as `null` (JSON has no
/// NaN/Inf), matching the telemetry exporters.
fn write_f64(out: &mut String, value: f64) {
    if !value.is_finite() {
        out.push_str("null");
        return;
    }
    let s = value.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Writes `s` as a JSON string literal with the required escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[', "expected '['")?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writer (it never splits); accept lone BMP
                            // code points and reject surrogates.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("surrogate \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.error("bad float"))
        } else if let Some(neg) = text.strip_prefix('-') {
            neg.parse::<i64>()
                .map(|v| Json::I64(-v))
                .map_err(|_| self.error("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

/// Convenience builder for objects: preserves insertion order.
#[derive(Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// An empty object builder.
    pub fn new() -> ObjBuilder {
        ObjBuilder::default()
    }

    /// Adds one field.
    pub fn field(mut self, key: &str, value: Json) -> ObjBuilder {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Finishes into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = u64::MAX - 1;
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed, Json::U64(v));
        assert_eq!(parsed.to_compact(), v.to_string());
    }

    #[test]
    fn float_variant_is_stable_across_round_trips() {
        // 2.0 renders as "2" under Display; the writer must force ".0" so
        // a re-parse does not silently become U64.
        let j = Json::F64(2.0);
        let text = j.to_compact();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn nested_round_trip() {
        let doc = ObjBuilder::new()
            .field("name", Json::Str("bench \"quoted\"".into()))
            .field("xs", Json::Arr(vec![Json::U64(1), Json::F64(0.25)]))
            .field(
                "inner",
                ObjBuilder::new().field("ok", Json::Bool(false)).build(),
            )
            .build();
        let compact = doc.to_compact();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = doc.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        assert!(pretty.contains("  \"xs\""), "indented:\n{pretty}");
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = Json::parse("{\"b\":1,\"a\":2}").unwrap();
        assert_eq!(doc.to_compact(), "{\"b\":1,\"a\":2}");
        assert_eq!(doc.get("a"), Some(&Json::U64(2)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
            "nan",
            "\"\\u00\"",
            "18446744073709551616",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"n\":3,\"f\":1.5,\"s\":\"x\",\"b\":true,\"a\":[1]}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("f").unwrap().as_u64(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
    }
}
