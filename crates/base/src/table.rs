//! Plain-text table rendering.
//!
//! The table-reproduction binaries (`table1` … `table4`) print their results
//! in the same row/column layout as the paper; this module provides the
//! column-aligned renderer they share.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (names).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// A simple text table: a header row, data rows, and optional separator
/// positions (printed as a rule line, used to separate the scientific /
/// embedded / aggregate sections exactly as the paper's tables do).
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    rules_before: Vec<usize>,
}

impl TextTable {
    /// Creates a table with the given column headers; all columns default to
    /// right alignment except the first (the row label).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        TextTable {
            headers,
            aligns,
            rows: Vec::new(),
            rules_before: Vec::new(),
        }
    }

    /// Overrides the alignment of one column.
    pub fn set_align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a data row. Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Inserts a horizontal rule before the next row to be added.
    pub fn rule(&mut self) -> &mut Self {
        self.rules_before.push(self.rows.len());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let rule_line = "-".repeat(total);

        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => out.push_str(&format!("{:<width$}", cell, width = widths[i])),
                    Align::Right => out.push_str(&format!("{:>width$}", cell, width = widths[i])),
                }
            }
            // Trim trailing padding for clean diffs.
            out.trim_end().to_string()
        };

        let mut lines = Vec::with_capacity(self.rows.len() + 3);
        lines.push(fmt_row(&self.headers));
        lines.push(rule_line.clone());
        for (idx, row) in self.rows.iter().enumerate() {
            if self.rules_before.contains(&idx) {
                lines.push(rule_line.clone());
            }
            lines.push(fmt_row(row));
        }
        lines.join("\n")
    }
}

/// Formats a float with `prec` decimals, trimming to a compact form used in
/// the paper's tables (e.g. `1.28`, `5.99`, `0.24`).
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio column with a trailing `x` multiplier (paper style).
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage with two decimals (paper's coverage columns).
pub fn fpct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["App", "ins", "ratio"]);
        t.row(vec!["adpcm", "305", "1.21"]);
        t.row(vec!["fft", "304", "2.94"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].starts_with("adpcm"));
        // Numeric columns right-aligned: "305" and "304" end at same offset.
        let p1 = lines[2].find("305").unwrap() + 3;
        let p2 = lines[3].find("304").unwrap() + 3;
        assert_eq!(p1, p2);
    }

    #[test]
    fn rule_separates_sections() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x", "1"]);
        t.rule();
        t.row(vec!["AVG", "1"]);
        let out = t.render();
        // header + rule + row + rule + row
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(1.2849, 2), "1.28");
        assert_eq!(fx(5.991), "5.99x");
        assert_eq!(fpct(0.3886), "38.86");
    }
}
