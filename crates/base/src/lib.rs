//! # jitise-base
//!
//! Foundation utilities shared by every crate in the `jitise` workspace:
//!
//! * [`SimTime`] — exact, nanosecond-resolution *simulated* time. The paper's
//!   tool-flow runtimes range from milliseconds (candidate search) to days
//!   (break-even times); modeling them as integer nanoseconds keeps all
//!   arithmetic exact and lets the whole evaluation run in milliseconds of
//!   host time.
//! * [`rng::SplitMix64`] / [`rng::XorShift128Plus`] — tiny deterministic
//!   PRNGs used where reproducibility matters more than statistical quality
//!   (workload generation seeds, cache population draws).
//! * [`stats::OnlineStats`] — Welford mean/stdev accumulation, used to
//!   reproduce the mean ± stdev rows of Table III.
//! * [`hash`] — FNV-1a based structural signatures (bitstream-cache keys).
//! * [`table`] — plain-text table rendering for the table-reproduction
//!   binaries.
//! * [`codec`] — a minimal binary encoder/decoder for the on-disk bitstream
//!   cache format (hand-rolled to avoid a serde format dependency).
//! * [`json`] — a minimal JSON value model, writer, and parser (exact
//!   integers) backing the machine-readable `BENCH_*.json` perf artifacts.
//! * [`sync`] — poison-free `Mutex`/`RwLock` wrappers with `parking_lot`
//!   ergonomics, so the workspace builds without network access.
//! * [`par`] — an index-ordered parallel map used by the multi-worker CAD
//!   scheduler: results return in input order regardless of completion
//!   order.

pub mod codec;
pub mod hash;
pub mod json;
pub mod par;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod table;

mod simtime;

pub use simtime::SimTime;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Workspace-wide error type.
///
/// Each crate layers its own context on top via its constructor variant; we
/// deliberately keep a single flat error enum because the tool flow is a
/// pipeline — errors either abort a candidate or abort the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// IR construction or verification failed.
    Ir(String),
    /// Interpreter fault (bad memory access, missing function, …).
    Vm(String),
    /// ISE identification / selection failure.
    Ise(String),
    /// Datapath generation / estimation failure.
    Pivpav(String),
    /// CAD tool-flow failure (unroutable design, timing, …).
    Cad(String),
    /// Architecture-level failure (no free CI slot, bad bitstream, …).
    Arch(String),
    /// Binary decoding failure.
    Codec(String),
    /// Persistent-store failure (dead store after a crash, unwritable
    /// directory, snapshot/WAL I/O error).
    Store(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Ir(m) => write!(f, "ir: {m}"),
            Error::Vm(m) => write!(f, "vm: {m}"),
            Error::Ise(m) => write!(f, "ise: {m}"),
            Error::Pivpav(m) => write!(f, "pivpav: {m}"),
            Error::Cad(m) => write!(f, "cad: {m}"),
            Error::Arch(m) => write!(f, "arch: {m}"),
            Error::Codec(m) => write!(f, "codec: {m}"),
            Error::Store(m) => write!(f, "store: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_domain() {
        let e = Error::Cad("unroutable".into());
        assert_eq!(e.to_string(), "cad: unroutable");
        let e = Error::Ir("bad operand".into());
        assert!(e.to_string().starts_with("ir:"));
    }
}
