//! Poison-free locking primitives with `parking_lot`-style ergonomics.
//!
//! The workspace builds in fully offline environments, so instead of
//! depending on `parking_lot` we wrap `std::sync` and recover from poison:
//! a panic while holding one of these locks must not cascade into every
//! other thread (the JIT runtime keeps serving workload runs even if a
//! specialization worker dies). `lock()` / `read()` / `write()` return the
//! guard directly, exactly like `parking_lot`, so call sites stay tidy.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would panic on unwrap; ours recovers.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000);
    }
}
