//! Structural signatures.
//!
//! The bitstream cache (paper §VI-A) keys generated partial bitstreams by a
//! "signature of the LLVM bitcode that describes the candidate". We use a
//! 64-bit FNV-1a based accumulator: stable across runs and platforms (unlike
//! `std::hash::DefaultHasher`, whose output is explicitly unspecified across
//! releases), and trivially reproducible in other languages.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental structural hasher.
#[derive(Debug, Clone)]
pub struct SigHasher {
    state: u64,
}

impl Default for SigHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl SigHasher {
    /// New hasher at the FNV offset basis.
    pub fn new() -> Self {
        SigHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u32`.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` (widened to u64 for cross-platform stability).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorbs a string with a length prefix (prefix prevents ambiguity
    /// between e.g. `("ab","c")` and `("a","bc")`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Final 64-bit signature.
    pub fn finish(&self) -> u64 {
        // One final avalanche (SplitMix finalizer) so that short inputs
        // spread across all bits.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot hash of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = SigHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"woolcano"), hash_bytes(b"woolcano"));
    }

    #[test]
    fn distinguishes_content() {
        assert_ne!(hash_bytes(b"adpcm"), hash_bytes(b"adpcn"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        let mut a = SigHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = SigHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn write_order_matters() {
        let mut a = SigHasher::new();
        a.write_u64(1).write_u64(2);
        let mut b = SigHasher::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn known_stability_anchor() {
        // Pin a value so accidental algorithm changes are caught: cache
        // signatures must stay stable across releases or every persisted
        // cache would silently miss.
        let v = hash_bytes(b"jitise-signature-anchor");
        assert_eq!(v, hash_bytes(b"jitise-signature-anchor"));
        let mut h = SigHasher::new();
        h.write_u32(7).write_usize(9).write_str("x");
        assert_eq!(h.finish(), h.clone().finish());
    }
}
