//! Simulated time.
//!
//! Every duration the tool flow reports — interpreter runtimes, CAD stage
//! runtimes, break-even times — is a [`SimTime`]: an exact number of
//! nanoseconds. The paper reports values spanning nine orders of magnitude
//! (1.44 ms candidate search up to 5149-day break-even points), which fits
//! comfortably in a `u64` of nanoseconds (~584 years).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An exact simulated duration with nanosecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * 1_000_000_000)
    }

    /// Constructs a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest nanosecond. Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Scales the duration by a non-negative float factor (rounds to the
    /// nearest nanosecond). Used for "30 % faster CAD tools" style
    /// extrapolations (Table IV).
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Formats as the paper's Table II `m:s` style: total minutes and
    /// seconds, e.g. `87:52` for 87 min 52 s.
    pub fn fmt_min_sec(self) -> String {
        let total_secs = self.0 / 1_000_000_000;
        format!("{}:{:02}", total_secs / 60, total_secs % 60)
    }

    /// Formats as the paper's Table IV `h:m:s` style, e.g. `01:59:55`.
    pub fn fmt_hms(self) -> String {
        let total_secs = self.0 / 1_000_000_000;
        format!(
            "{:02}:{:02}:{:02}",
            total_secs / 3_600,
            (total_secs % 3_600) / 60,
            total_secs % 60
        )
    }

    /// Formats as the paper's break-even `d:h:m:s` style, e.g.
    /// `206:22:15:50` for 206 days 22 h 15 m 50 s.
    pub fn fmt_dhms(self) -> String {
        let total_secs = self.0 / 1_000_000_000;
        format!(
            "{}:{:02}:{:02}:{:02}",
            total_secs / 86_400,
            (total_secs % 86_400) / 3_600,
            (total_secs % 3_600) / 60,
            total_secs % 60
        )
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    /// Human-oriented adaptive display: picks the most readable unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1e-6 {
            write!(f, "{}ns", self.0)
        } else if s < 1e-3 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if s < 1.0 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else if s < 120.0 {
            write!(f, "{s:.2}s")
        } else if s < 2.0 * 3_600.0 {
            write!(f, "{}", self.fmt_min_sec())
        } else if s < 48.0 * 3_600.0 {
            write!(f, "{}", self.fmt_hms())
        } else {
            write!(f, "{}", self.fmt_dhms())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(3.25);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert!((t.as_secs_f64() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_saturates_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(90);
        let b = SimTime::from_secs(30);
        assert_eq!(a + b, SimTime::from_secs(120));
        assert_eq!(a - b, SimTime::from_secs(60));
        assert_eq!(a * 2, SimTime::from_secs(180));
        assert_eq!(a / 3, SimTime::from_secs(30));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn scale_matches_table_iv_semantics() {
        // A 30 % faster tool flow runs in 70 % of the time.
        let t = SimTime::from_secs(1000);
        assert_eq!(t.scale(0.7), SimTime::from_secs(700));
    }

    #[test]
    fn formatting_matches_paper_styles() {
        // Table II sum column style: 87 min 52 s -> "87:52".
        let t = SimTime::from_mins(87) + SimTime::from_secs(52);
        assert_eq!(t.fmt_min_sec(), "87:52");
        // Table IV style: 1 h 59 m 55 s -> "01:59:55".
        let t = SimTime::from_hours(1) + SimTime::from_mins(59) + SimTime::from_secs(55);
        assert_eq!(t.fmt_hms(), "01:59:55");
        // Break-even style: 206 d 22 h 15 m 50 s.
        let t =
            SimTime::from_hours(206 * 24 + 22) + SimTime::from_mins(15) + SimTime::from_secs(50);
        assert_eq!(t.fmt_dhms(), "206:22:15:50");
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(250).to_string(), "250.00us");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.00s");
        assert_eq!(SimTime::from_mins(10).to_string(), "10:00");
    }
}
