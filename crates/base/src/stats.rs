//! Online statistics (Welford) and small summary helpers.
//!
//! Table III of the paper reports mean ± standard deviation for every
//! constant-time CAD stage; [`OnlineStats`] accumulates exactly those.

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub fn stdev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Population standard deviation (n denominator; 0 for n < 1).
    pub fn stdev_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Arithmetic mean of a slice (0 if empty). Convenience for table code.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice of positive values (0 if empty).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stdev(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population stdev of this classic sequence is exactly 2.
        assert!((s.stdev_population() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stdev(), 0.0);
        assert_eq!(s.min(), Some(3.5));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stdev() - whole.stdev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean(), a.stdev());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.stdev()));

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(5.0);
        empty.merge(&b);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }
}
