//! Minimal binary encoding for persisted artifacts (bitstream-cache entries).
//!
//! Hand-rolled LEB128-style varints plus length-prefixed byte strings; small
//! enough to audit, with explicit error handling on decode. This keeps the
//! workspace free of a serde *format* dependency while still allowing the
//! bitstream cache to round-trip through disk.
//!
//! The [`frame`]/[`read_frame`] pair adds crash-consistent record framing
//! on top: each record is `[len: u32 LE][crc32(payload): u32 LE][payload]`,
//! so a reader scanning an append-only log can distinguish a *torn tail*
//! (the writer died mid-record — fewer bytes on disk than the header
//! promises) from *corruption* (all bytes present but the checksum fails)
//! and recover exactly the committed prefix. `jitise-store` builds its
//! write-ahead log on these helpers.

use crate::{Error, Result};

/// CRC32 (IEEE polynomial, bitwise — framed payloads are small).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Byte length of a frame header (`len` + `crc`, both `u32` LE).
pub const FRAME_HEADER_LEN: usize = 8;

/// Frames `payload` as `[len][crc32(payload)][payload]` (see module docs).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of scanning one frame off the front of a byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A complete, checksum-verified frame. `consumed` is the total frame
    /// size (header + payload); the next frame starts there.
    Frame {
        /// The verified payload.
        payload: &'a [u8],
        /// Bytes this frame occupied, header included.
        consumed: usize,
    },
    /// Input ended mid-frame: a writer died between starting and finishing
    /// this record. Everything before it is intact; the tail is garbage.
    TornTail,
    /// The frame is structurally complete but its payload fails the CRC
    /// (or its declared length exceeds `max_len`) — bit rot or an
    /// in-flight corruption, not a clean truncation.
    Corrupt,
    /// Clean end of input: no bytes remain.
    End,
}

/// Reads one frame from the front of `data`.
///
/// `max_len` bounds the declared payload length; anything larger is
/// reported as [`FrameRead::Corrupt`] rather than trusted (a flipped bit
/// in the length field must not drive a multi-gigabyte read).
pub fn read_frame(data: &[u8], max_len: u32) -> FrameRead<'_> {
    if data.is_empty() {
        return FrameRead::End;
    }
    if data.len() < FRAME_HEADER_LEN {
        return FrameRead::TornTail;
    }
    let len = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        return FrameRead::Corrupt;
    }
    let end = FRAME_HEADER_LEN + len as usize;
    if data.len() < end {
        return FrameRead::TornTail;
    }
    let payload = &data[FRAME_HEADER_LEN..end];
    if crc32(payload) != crc {
        return FrameRead::Corrupt;
    }
    FrameRead::Frame {
        payload,
        consumed: end,
    }
}

/// Append-only encoder.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Unsigned varint (LEB128).
    pub fn put_varu64(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return self;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// 32-bit convenience wrapper over [`Self::put_varu64`].
    pub fn put_varu32(&mut self, v: u32) -> &mut Self {
        self.put_varu64(v as u64)
    }

    /// Fixed-width little-endian u64 (used for signatures, where fixed
    /// width makes hex dumps greppable).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.put_varu64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_bytes(s.as_bytes())
    }

    /// Finishes and returns the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// New decoder at offset 0.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(Error::Codec(format!(
                "unexpected end of input: need {n} bytes at offset {} of {}",
                self.pos,
                self.data.len()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Unsigned varint (LEB128).
    pub fn get_varu64(&mut self) -> Result<u64> {
        let mut shift = 0u32;
        let mut out = 0u64;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 {
                return Err(Error::Codec("varint overflows u64".into()));
            }
            out |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// 32-bit varint, with range check.
    pub fn get_varu32(&mut self) -> Result<u32> {
        let v = self.get_varu64()?;
        u32::try_from(v).map_err(|_| Error::Codec(format!("varint {v} exceeds u32")))
    }

    /// Fixed-width little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("take(8)")))
    }

    /// Length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varu64()? as usize;
        self.take(len)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| Error::Codec(format!("invalid utf-8: {e}")))
    }

    /// True once all input is consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut enc = Encoder::new();
        for &v in &values {
            enc.put_varu64(v);
        }
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        for &v in &values {
            assert_eq!(dec.get_varu64().unwrap(), v);
        }
        assert!(dec.is_at_end());
    }

    #[test]
    fn varint_sizes() {
        let mut enc = Encoder::new();
        enc.put_varu64(127);
        assert_eq!(enc.len(), 1);
        let mut enc = Encoder::new();
        enc.put_varu64(128);
        assert_eq!(enc.len(), 2);
    }

    #[test]
    fn mixed_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u64(0xDEAD_BEEF_CAFE_F00D)
            .put_str("bitstream")
            .put_bytes(&[1, 2, 3])
            .put_varu32(42);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_u64().unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(dec.get_str().unwrap(), "bitstream");
        assert_eq!(dec.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(dec.get_varu32().unwrap(), 42);
        assert!(dec.is_at_end());
    }

    #[test]
    fn truncated_input_errors() {
        let mut enc = Encoder::new();
        enc.put_str("hello");
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf[..3]);
        assert!(dec.get_str().is_err());
    }

    #[test]
    fn empty_string_and_bytes() {
        let mut enc = Encoder::new();
        enc.put_str("").put_bytes(&[]);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_str().unwrap(), "");
        assert_eq!(dec.get_bytes().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn varu32_range_check() {
        let mut enc = Encoder::new();
        enc.put_varu64(u64::from(u32::MAX) + 1);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf);
        assert!(dec.get_varu32().is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes would shift past 64 bits.
        let buf = [0x80u8; 11];
        let mut dec = Decoder::new(&buf);
        assert!(dec.get_varu64().is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let framed = frame(b"hello");
        assert_eq!(framed.len(), FRAME_HEADER_LEN + 5);
        match read_frame(&framed, 1 << 20) {
            FrameRead::Frame { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, framed.len());
            }
            other => panic!("expected Frame, got {other:?}"),
        }
        assert_eq!(read_frame(&[], 1 << 20), FrameRead::End);
    }

    #[test]
    fn frame_every_truncation_is_a_torn_tail() {
        let framed = frame(b"payload bytes");
        for cut in 1..framed.len() {
            assert_eq!(
                read_frame(&framed[..cut], 1 << 20),
                FrameRead::TornTail,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn frame_bit_flip_is_corrupt_or_torn() {
        let framed = frame(b"sensitive");
        for byte in 0..framed.len() {
            let mut damaged = framed.clone();
            damaged[byte] ^= 0x01;
            match read_frame(&damaged, 1 << 20) {
                // A flipped length byte may make the frame look longer
                // than the input (TornTail) or oversized (Corrupt); a
                // flipped CRC/payload byte must always be Corrupt.
                FrameRead::Corrupt | FrameRead::TornTail => {}
                other => panic!("flip at {byte} yielded {other:?}"),
            }
        }
    }

    #[test]
    fn frame_oversized_length_rejected() {
        let framed = frame(b"x");
        assert_eq!(read_frame(&framed, 0), FrameRead::Corrupt);
    }
}
