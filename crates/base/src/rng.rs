//! Deterministic pseudo-random number generation.
//!
//! The workspace needs reproducible randomness in three places: the
//! synthetic application generator (`jitise-apps`), the simulated-annealing
//! placer (`jitise-cad`), and the Monte-Carlo cache-population experiment of
//! Table IV (`jitise-core`). All three seed one of these generators with a
//! fixed value so that every table reproduction run is bit-identical.

/// SplitMix64 — tiny, fast, and good enough for seeding and light use.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a positive bound");
        // Lemire-style multiply-shift rejection-free approximation is fine
        // here; slight modulo bias is irrelevant for our use cases but we
        // use 128-bit multiply to avoid it anyway.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// Used by the Table IV experiment: "we have populated the cache with
    /// r % of the required bitstreams … the selection … is random".
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

/// xorshift128+ — slightly higher quality stream for the SA placer, where
/// correlated low bits would bias move selection.
#[derive(Debug, Clone)]
pub struct XorShift128Plus {
    s0: u64,
    s1: u64,
}

impl XorShift128Plus {
    /// Seeds the generator via SplitMix64 expansion (never all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64() | 1; // guarantee non-zero state
        let s1 = sm.next_u64();
        XorShift128Plus { s0, s1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SplitMix64::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi, "range endpoints should both occur");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SplitMix64::new(11);
        let sample = r.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_all_is_permutation() {
        let mut r = SplitMix64::new(13);
        let mut sample = r.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn xorshift_deterministic_and_uniformish() {
        let mut a = XorShift128Plus::new(100);
        let mut b = XorShift128Plus::new(100);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            if x < 0.5 {
                below_half += 1;
            }
        }
        // Extremely loose uniformity sanity check.
        assert!((3_000..7_000).contains(&below_half));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(21);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
