//! Property tests for the foundation crate: SimTime algebra, codec
//! round-trips, hashing stability, and RNG sampling invariants.

use jitise_base::codec::{Decoder, Encoder};
use jitise_base::hash::SigHasher;
use jitise_base::rng::SplitMix64;
use jitise_base::stats::OnlineStats;
use jitise_base::SimTime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn simtime_addition_is_commutative_and_associative(
        a in 0u64..1u64 << 40,
        b in 0u64..1u64 << 40,
        c in 0u64..1u64 << 40,
    ) {
        let (ta, tb, tc) = (
            SimTime::from_nanos(a),
            SimTime::from_nanos(b),
            SimTime::from_nanos(c),
        );
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert_eq!((ta + tb).saturating_sub(tb), ta);
    }

    #[test]
    fn simtime_scale_is_monotone(ns in 0u64..1u64 << 50, f in 0.0f64..2.0) {
        let t = SimTime::from_nanos(ns);
        let scaled = t.scale(f);
        if f <= 1.0 {
            prop_assert!(scaled <= t + SimTime::from_nanos(1));
        } else {
            prop_assert!(scaled + SimTime::from_nanos(1) >= t);
        }
    }

    #[test]
    fn simtime_formatting_roundtrips_seconds(secs in 0u64..1_000_000) {
        let t = SimTime::from_secs(secs);
        // h:m:s parses back to the same seconds.
        let hms = t.fmt_hms();
        let parts: Vec<u64> = hms.split(':').map(|p| p.parse().unwrap()).collect();
        prop_assert_eq!(parts[0] * 3600 + parts[1] * 60 + parts[2], secs);
        // d:h:m:s as well.
        let dhms = t.fmt_dhms();
        let parts: Vec<u64> = dhms.split(':').map(|p| p.parse().unwrap()).collect();
        prop_assert_eq!(
            ((parts[0] * 24 + parts[1]) * 60 + parts[2]) * 60 + parts[3],
            secs
        );
    }

    #[test]
    fn codec_roundtrips_arbitrary_sequences(
        vals in prop::collection::vec(any::<u64>(), 0..40),
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..10),
        text in "[a-zA-Z0-9 _-]{0,40}",
    ) {
        let mut enc = Encoder::new();
        enc.put_varu64(vals.len() as u64);
        for &v in &vals {
            enc.put_varu64(v);
            enc.put_u64(v.rotate_left(13));
        }
        enc.put_varu64(blobs.len() as u64);
        for b in &blobs {
            enc.put_bytes(b);
        }
        enc.put_str(&text);
        let buf = enc.finish();

        let mut dec = Decoder::new(&buf);
        let n = dec.get_varu64().unwrap();
        prop_assert_eq!(n as usize, vals.len());
        for &v in &vals {
            prop_assert_eq!(dec.get_varu64().unwrap(), v);
            prop_assert_eq!(dec.get_u64().unwrap(), v.rotate_left(13));
        }
        let m = dec.get_varu64().unwrap();
        prop_assert_eq!(m as usize, blobs.len());
        for b in &blobs {
            prop_assert_eq!(dec.get_bytes().unwrap(), b.as_slice());
        }
        prop_assert_eq!(dec.get_str().unwrap(), text.as_str());
        prop_assert!(dec.is_at_end());
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut dec = Decoder::new(&data);
        // Whatever the bytes are, decoding returns Ok or Err — no panic.
        let _ = dec.get_varu64();
        let _ = dec.get_bytes();
        let _ = dec.get_str();
        let _ = dec.get_u64();
    }

    #[test]
    fn hashing_is_injective_ish_and_stable(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        let h = |x: &[u8]| {
            let mut s = SigHasher::new();
            s.write_bytes(x);
            s.finish()
        };
        prop_assert_eq!(h(&a), h(&a), "stability");
        if a != b {
            // 64-bit collisions exist but must be astronomically unlikely
            // for random proptest inputs.
            prop_assert_ne!(h(&a), h(&b));
        }
    }

    #[test]
    fn rng_sample_indices_always_distinct(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let k = n / 2;
        let sample = rng.sample_indices(n, k);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(s.min(), Some(min));
    }
}
