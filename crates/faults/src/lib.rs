//! # jitise-faults — deterministic fault injection for the ASIP-SP pipeline
//!
//! The paper's feasibility argument hinges on the JIT system surviving a
//! slow *or unreliable* runtime CAD flow: whenever specialization cannot
//! complete, the application must keep running on the plain PowerPC. This
//! crate provides the adversary that exercises that property — a seeded,
//! fully deterministic fault injector — plus the two policy pieces the
//! pipeline uses to absorb the faults it throws:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — decide, as a *pure function* of
//!   `(seed, site, key, attempt)`, whether a fault fires at a given
//!   [`FaultSite`]. Determinism is total: no global state, no call-order
//!   dependence, identical decisions across threads and re-runs. A fault
//!   is either [`FaultKind::Transient`] (clears after a bounded number of
//!   retry attempts) or [`FaultKind::Persistent`] (fires on every attempt,
//!   forcing the quarantine path).
//! * [`RetryPolicy`] — bounded retries with exponential backoff counted in
//!   simulated time (the tool re-run a real deployment would wait for).
//! * [`Quarantine`] — a thread-safe set of candidate signatures whose
//!   implementation failed persistently; the pipeline skips them outright
//!   instead of burning tool time on known-bad candidates.
//!
//! The disabled injector ([`FaultInjector::disabled`]) is a no-op handle
//! in the same style as `jitise_telemetry::Telemetry::disabled()`: one
//! `Option` check per call site, no allocation, and — the bar enforced by
//! the `chaos` binary — a zero-rate plan is *observationally transparent*
//! (byte-identical reports to a run without any injector).

use jitise_base::hash::SigHasher;
use jitise_base::sync::{Mutex, RwLock};
use jitise_base::SimTime;
use std::collections::HashMap;
use std::sync::Arc;

/// Where in the pipeline a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Synthesis front-end (syntax check + XST) of the CAD flow.
    CadSynthesis,
    /// The map (slice packing) stage.
    CadMap,
    /// The placer.
    CadPlace,
    /// The router.
    CadRoute,
    /// Static timing analysis.
    CadTiming,
    /// ICAP bitstream transfer — fires as a bit-flip that must trip the
    /// reconfiguration controller's CRC check.
    IcapTransfer,
    /// A bitstream-cache entry read back corrupted (poisoned entry).
    CacheEntry,
    /// The background specialization worker hangs.
    WorkerStall,
    /// The background specialization worker dies without reporting.
    WorkerDeath,
    /// A persistent-store WAL record corrupted between the commit and the
    /// platters (silent media corruption): the in-session write succeeds,
    /// but recovery must CRC-drop the record instead of trusting it.
    StoreWal,
    /// The atomic tier swap that replaces an installed overlay CI with
    /// its fully routed upgrade: the ICAP transfer of the upgrade
    /// bitstream corrupts, the CRC check rejects it, and the slot keeps
    /// the overlay tier (still correct, just slower).
    UpgradeSwap,
}

impl FaultSite {
    /// Every site, in stable order (indexes [`FaultPlan`] rate storage).
    pub const ALL: [FaultSite; 11] = [
        FaultSite::CadSynthesis,
        FaultSite::CadMap,
        FaultSite::CadPlace,
        FaultSite::CadRoute,
        FaultSite::CadTiming,
        FaultSite::IcapTransfer,
        FaultSite::CacheEntry,
        FaultSite::WorkerStall,
        FaultSite::WorkerDeath,
        FaultSite::StoreWal,
        FaultSite::UpgradeSwap,
    ];

    /// Stable short name (telemetry fields, error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CadSynthesis => "cad.synthesis",
            FaultSite::CadMap => "cad.map",
            FaultSite::CadPlace => "cad.place",
            FaultSite::CadRoute => "cad.route",
            FaultSite::CadTiming => "cad.timing",
            FaultSite::IcapTransfer => "icap.transfer",
            FaultSite::CacheEntry => "cache.entry",
            FaultSite::WorkerStall => "worker.stall",
            FaultSite::WorkerDeath => "worker.death",
            FaultSite::StoreWal => "store.wal",
            FaultSite::UpgradeSwap => "upgrade.swap",
        }
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("site in ALL")
    }
}

/// How long a fault lasts across retry attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Clears after a bounded number of attempts — retry succeeds.
    Transient,
    /// Fires on every attempt — retries are futile, quarantine the key.
    Persistent,
}

impl FaultKind {
    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Persistent => "persistent",
        }
    }
}

/// Correlated fault windows overlaid on a plan's per-site rates.
///
/// Real outages cluster: a wedged license server or a failing disk takes
/// out a *window* of CAD runs, not an i.i.d. sprinkle. A burst plan
/// divides the session into epochs (the caller supplies the epoch — the
/// storm runtime uses the workload run index) and modulates every site's
/// base rate by where the epoch falls in the burst cycle: inside the
/// leading `width` epochs of each `period` the rate is multiplied by
/// `boost`, outside by `calm` (often `0.0` — dead quiet between storms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bursts {
    /// Epochs per burst cycle (≥ 1).
    pub period: u64,
    /// Leading epochs of each cycle during which the burst is active.
    pub width: u64,
    /// Rate multiplier inside a burst window.
    pub boost: f64,
    /// Rate multiplier outside the window.
    pub calm: f64,
}

/// A seeded description of which faults fire where.
///
/// Decisions are pure functions of `(seed, site, key, attempt)` — plus the
/// epoch when a [`Bursts`] overlay is armed; two plans with the same seed
/// and rates make identical decisions regardless of call order, thread, or
/// process.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Decision seed.
    pub seed: u64,
    /// Per-site fire probability in `[0, 1]`.
    rates: [f64; FaultSite::ALL.len()],
    /// Fraction of fired faults that are persistent (default 0.3).
    pub persistent_frac: f64,
    /// Maximum attempts a transient fault keeps failing (default 2).
    pub max_transient_failures: u32,
    /// Optional correlated-burst overlay. `None` (the default) keeps every
    /// decision — and therefore every downstream artifact — byte-identical
    /// to a plan built before bursts existed.
    bursts: Option<Bursts>,
}

impl FaultPlan {
    /// A plan with every rate at zero (injects nothing).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; FaultSite::ALL.len()],
            persistent_frac: 0.3,
            max_transient_failures: 2,
            bursts: None,
        }
    }

    /// A plan with the same fire probability at every site.
    pub fn uniform(rate: f64, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::none(seed);
        for r in plan.rates.iter_mut() {
            *r = rate.clamp(0.0, 1.0);
        }
        plan
    }

    /// Sets one site's rate (builder style).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rates[site.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Arms the correlated-burst overlay (builder style).
    pub fn with_bursts(mut self, bursts: Bursts) -> FaultPlan {
        self.bursts = Some(Bursts {
            period: bursts.period.max(1),
            width: bursts.width.min(bursts.period.max(1)),
            boost: bursts.boost.max(0.0),
            calm: bursts.calm.max(0.0),
        });
        self
    }

    /// The armed burst overlay, if any.
    pub fn bursts(&self) -> Option<Bursts> {
        self.bursts
    }

    /// The fire probability at `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// Deterministic uniform draw in `[0, 1)` from the plan seed and a
    /// salt/site/key triple.
    fn unit(&self, salt: u64, site: FaultSite, key: u64) -> f64 {
        let mut h = SigHasher::new();
        h.write_u64(self.seed)
            .write_u64(salt)
            .write_u64(site.index() as u64)
            .write_u64(key);
        (h.finish() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does a fault fire at `site` for identity `key` on `attempt`
    /// (1-based)? Persistent faults fire on every attempt; transient
    /// faults fail the first `1..=max_transient_failures` attempts (the
    /// exact count drawn deterministically per key) and then clear.
    ///
    /// Equivalent to [`Self::decide_at`] with epoch 0; without a burst
    /// overlay the epoch is ignored entirely, so this path is unchanged.
    pub fn decide(&self, site: FaultSite, key: u64, attempt: u32) -> Option<FaultKind> {
        self.decide_at(site, key, attempt, 0)
    }

    /// [`Self::decide`] positioned at `epoch` for burst modulation. With
    /// no overlay armed the decision is independent of the epoch (and
    /// byte-identical to the pre-burst implementation). With an overlay,
    /// the site rate is scaled by the window multiplier and the epoch is
    /// folded into the draw identity, so each burst window draws a fresh
    /// — but still fully deterministic — set of victims.
    pub fn decide_at(
        &self,
        site: FaultSite,
        key: u64,
        attempt: u32,
        epoch: u64,
    ) -> Option<FaultKind> {
        let base = self.rate(site);
        let (rate, key) = match self.bursts {
            None => (base, key),
            Some(b) => {
                let period = b.period.max(1);
                // Per-seed phase offset so different seeds storm at
                // different session positions.
                let pos = (epoch + self.seed % period) % period;
                let mult = if pos < b.width { b.boost } else { b.calm };
                let mut h = SigHasher::new();
                h.write_u64(key)
                    .write_u64(0x0062_7572_7374 /* "burst" */)
                    .write_u64(epoch);
                ((base * mult).clamp(0.0, 1.0), h.finish())
            }
        };
        if rate <= 0.0 || self.unit(1, site, key) >= rate {
            return None;
        }
        if self.unit(2, site, key) < self.persistent_frac {
            return Some(FaultKind::Persistent);
        }
        let max = self.max_transient_failures.max(1);
        let fails = 1 + (self.unit(3, site, key) * max as f64) as u32;
        if attempt <= fails.min(max) {
            Some(FaultKind::Transient)
        } else {
            None
        }
    }
}

/// Cheap-clone injection handle threaded through the pipeline.
///
/// Like `Telemetry`, a handle is either *enabled* (shares one plan with
/// all clones) or *disabled* (a pure no-op). [`FaultInjector::scope`]
/// binds the key/attempt pair so that deep call sites (the CAD flow) only
/// name the [`FaultSite`].
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: Option<Arc<FaultPlan>>,
    key: u64,
    attempt: u32,
    /// Burst-cycle position (the storm runtime sets it to the workload run
    /// index). Irrelevant — and zero — unless the plan has a burst overlay.
    epoch: u64,
    /// Tenant identity folded into every draw key. `None` (the default)
    /// keeps decisions byte-identical to a tenant-less injector; the serve
    /// runtime sets it per session so a tenant's fault schedule is a pure
    /// function of `(plan, tenant id, epoch, site, key, attempt)` —
    /// invariant under admission order and fleet size.
    tenant: Option<u64>,
}

/// Salt folding a tenant id into the draw-key space ("tnant").
const TENANT_SALT: u64 = 0x0074_6e61_6e74;

impl FaultInjector {
    /// The no-op handle: every decision is `None`.
    pub fn disabled() -> FaultInjector {
        FaultInjector::default()
    }

    /// An injector executing `plan`.
    pub fn from_plan(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan: Some(Arc::new(plan)),
            key: 0,
            attempt: 1,
            epoch: 0,
            tenant: None,
        }
    }

    /// Whether this handle can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// A handle bound to `(key, attempt)` — the identity decisions are
    /// keyed by (candidate signature, retry attempt number, 1-based).
    /// The burst epoch and tenant binding are carried over.
    pub fn scope(&self, key: u64, attempt: u32) -> FaultInjector {
        FaultInjector {
            plan: self.plan.clone(),
            key,
            attempt,
            epoch: self.epoch,
            tenant: self.tenant,
        }
    }

    /// A handle positioned at a burst epoch (key/attempt/tenant carried
    /// over). A no-op unless the plan has a [`Bursts`] overlay.
    pub fn at_epoch(&self, epoch: u64) -> FaultInjector {
        FaultInjector {
            plan: self.plan.clone(),
            key: self.key,
            attempt: self.attempt,
            epoch,
            tenant: self.tenant,
        }
    }

    /// A handle whose fault stream is keyed by `tenant` (key/attempt/epoch
    /// carried over): every subsequent decision folds the tenant id into
    /// the draw identity, so two tenants sharing a plan draw disjoint
    /// deterministic fault schedules, and one tenant's schedule does not
    /// depend on who else is admitted, in what order, or how large the
    /// fleet is. A tenant-less handle is byte-identical to the pre-tenant
    /// implementation.
    pub fn for_tenant(&self, tenant: u64) -> FaultInjector {
        FaultInjector {
            plan: self.plan.clone(),
            key: self.key,
            attempt: self.attempt,
            epoch: self.epoch,
            tenant: Some(tenant),
        }
    }

    /// The draw key with the tenant binding (if any) folded in.
    fn effective_key(&self) -> u64 {
        match self.tenant {
            None => self.key,
            Some(t) => {
                let mut h = SigHasher::new();
                h.write_u64(self.key).write_u64(TENANT_SALT).write_u64(t);
                h.finish()
            }
        }
    }

    /// Does a fault fire at `site` under this handle's scope?
    pub fn decide(&self, site: FaultSite) -> Option<FaultKind> {
        self.plan
            .as_ref()
            .and_then(|p| p.decide_at(site, self.effective_key(), self.attempt, self.epoch))
    }

    /// If a fault fires at `site`, flips one deterministic bit in `bytes`
    /// and reports the kind. Empty input still counts as fired (the
    /// corruption then manifests as a structural decode error upstream).
    pub fn corrupt(&self, site: FaultSite, bytes: &mut [u8]) -> Option<FaultKind> {
        let kind = self.decide(site)?;
        if let Some(plan) = &self.plan {
            if !bytes.is_empty() {
                let mut h = SigHasher::new();
                h.write_u64(plan.seed)
                    .write_u64(4)
                    .write_u64(site.index() as u64)
                    .write_u64(self.effective_key())
                    .write_u64(self.attempt as u64);
                let bit = h.finish() as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Some(kind)
    }
}

/// A deterministic crash point for the persistent store: the backing
/// files stop accepting writes after exactly `after_bytes` further bytes
/// — mid-record, mid-snapshot, wherever the budget lands. This models a
/// process kill (power loss, OOM-kill, SIGKILL) at an arbitrary write
/// boundary; the crash-sim harness sweeps `after_bytes` across a full
/// app run and asserts that recovery always restores exactly the
/// committed prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCrash {
    /// Write budget in bytes; the write that would exceed it is truncated
    /// at the boundary and every later write is refused.
    pub after_bytes: u64,
}

#[derive(Debug)]
struct CrashState {
    remaining: Mutex<u64>,
    tripped: std::sync::atomic::AtomicBool,
}

/// Cheap-clone write-budget switch the store consults on every file
/// write. Disabled (the default) it admits everything; armed with a
/// [`StoreCrash`] it admits bytes until the budget runs dry, then "kills"
/// the store: the offending write is cut at the exact byte boundary and
/// all subsequent writes are refused, exactly as a dead process would
/// leave the file system.
#[derive(Debug, Clone, Default)]
pub struct CrashSwitch {
    state: Option<Arc<CrashState>>,
}

impl CrashSwitch {
    /// The no-op switch: every write is admitted in full.
    pub fn disabled() -> CrashSwitch {
        CrashSwitch::default()
    }

    /// A switch armed with a crash point.
    pub fn armed(plan: StoreCrash) -> CrashSwitch {
        CrashSwitch {
            state: Some(Arc::new(CrashState {
                remaining: Mutex::new(plan.after_bytes),
                tripped: std::sync::atomic::AtomicBool::new(false),
            })),
        }
    }

    /// Asks to write `want` bytes; returns how many may actually reach
    /// the file. A short return means the crash fired *during* this
    /// write: the caller must persist exactly that prefix and then treat
    /// the store as dead.
    pub fn admit(&self, want: usize) -> usize {
        let Some(state) = &self.state else {
            return want;
        };
        if state.tripped.load(std::sync::atomic::Ordering::Relaxed) {
            return 0;
        }
        let mut remaining = state.remaining.lock();
        let allowed = (*remaining).min(want as u64) as usize;
        *remaining -= allowed as u64;
        if allowed < want {
            state
                .tripped
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
        allowed
    }

    /// True once the crash has fired (some write was cut short).
    pub fn is_tripped(&self) -> bool {
        self.state
            .as_ref()
            .map(|s| s.tripped.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(false)
    }
}

/// Bounded retry with exponential backoff in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per candidate, including the first (≥ 1).
    pub max_attempts: u32,
    /// Simulated wait before the first retry.
    pub backoff_base: SimTime,
    /// Backoff multiplier per further retry.
    pub backoff_factor: u32,
}

impl Default for RetryPolicy {
    /// Three attempts, 5 s base backoff, doubling — small next to the
    /// ~230 s a full CAD run costs, so retrying a transient tool crash is
    /// always cheaper than regenerating from scratch later.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: SimTime::from_secs(5),
            backoff_factor: 2,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff before retry number `retry` (1-based):
    /// `base * factor^(retry-1)`, saturating.
    pub fn backoff_for(&self, retry: u32) -> SimTime {
        let factor = (self.backoff_factor.max(1) as u64).saturating_pow(retry.saturating_sub(1));
        SimTime::from_nanos(self.backoff_base.as_nanos().saturating_mul(factor))
    }
}

/// Thread-safe set of candidate signatures that failed persistently.
///
/// Shared across specialization sessions (an `Arc<Quarantine>` in the
/// pipeline config) so a signature that exhausted its retries is never
/// re-attempted — the candidate simply stays in software.
#[derive(Debug, Default)]
pub struct Quarantine {
    inner: RwLock<HashMap<u64, String>>,
}

impl Quarantine {
    /// An empty quarantine.
    pub fn new() -> Quarantine {
        Quarantine::default()
    }

    /// Quarantines `signature` with a reason. Returns `true` if the
    /// signature was newly inserted.
    pub fn insert(&self, signature: u64, reason: &str) -> bool {
        let mut map = self.inner.write();
        if map.contains_key(&signature) {
            return false;
        }
        map.insert(signature, reason.to_string());
        true
    }

    /// Is `signature` quarantined?
    pub fn contains(&self, signature: u64) -> bool {
        self.inner.read().contains_key(&signature)
    }

    /// The recorded reason for a quarantined signature.
    pub fn reason(&self, signature: u64) -> Option<String> {
        self.inner.read().get(&signature).cloned()
    }

    /// All quarantined signatures, sorted — a deterministic view of the
    /// set, used to compare quarantine contents across runs.
    pub fn signatures(&self) -> Vec<u64> {
        let mut sigs: Vec<u64> = self.inner.read().keys().copied().collect();
        sigs.sort_unstable();
        sigs
    }

    /// Number of quarantined signatures.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for site in FaultSite::ALL {
            assert_eq!(inj.decide(site), None);
            let mut bytes = vec![0u8; 16];
            assert_eq!(inj.corrupt(site, &mut bytes), None);
            assert_eq!(bytes, vec![0u8; 16]);
        }
    }

    #[test]
    fn zero_rate_plan_never_fires() {
        let plan = FaultPlan::uniform(0.0, 42);
        for site in FaultSite::ALL {
            for key in [0u64, 1, 0xdead_beef, u64::MAX] {
                for attempt in 1..5 {
                    assert_eq!(plan.decide(site, key, attempt), None);
                }
            }
        }
    }

    #[test]
    fn full_rate_plan_always_fires() {
        let plan = FaultPlan::uniform(1.0, 7);
        for site in FaultSite::ALL {
            assert!(plan.decide(site, 99, 1).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let a = FaultPlan::uniform(0.5, 123);
        let b = FaultPlan::uniform(0.5, 123);
        // Query b in reverse order: decisions must still agree pointwise.
        let keys: Vec<u64> = (0..200).map(|k| k * 7919).collect();
        let from_a: Vec<_> = keys
            .iter()
            .map(|&k| a.decide(FaultSite::CadMap, k, 1))
            .collect();
        let from_b: Vec<_> = keys
            .iter()
            .rev()
            .map(|&k| b.decide(FaultSite::CadMap, k, 1))
            .collect();
        assert_eq!(
            from_a,
            from_b.into_iter().rev().collect::<Vec<_>>(),
            "same plan, same decisions, any order"
        );
    }

    #[test]
    fn persistent_faults_fire_on_every_attempt() {
        let plan = FaultPlan::uniform(1.0, 5).with_rate(FaultSite::CadMap, 1.0);
        let mut saw_persistent = false;
        for key in 0..500u64 {
            if plan.decide(FaultSite::CadMap, key, 1) == Some(FaultKind::Persistent) {
                saw_persistent = true;
                for attempt in 1..20 {
                    assert_eq!(
                        plan.decide(FaultSite::CadMap, key, attempt),
                        Some(FaultKind::Persistent)
                    );
                }
            }
        }
        assert!(saw_persistent, "with rate 1.0 some keys must be persistent");
    }

    #[test]
    fn transient_faults_clear_within_the_bound() {
        let plan = FaultPlan::uniform(1.0, 11);
        let bound = plan.max_transient_failures;
        let mut saw_transient = false;
        for key in 0..500u64 {
            if plan.decide(FaultSite::CadRoute, key, 1) == Some(FaultKind::Transient) {
                saw_transient = true;
                assert_eq!(
                    plan.decide(FaultSite::CadRoute, key, bound + 1),
                    None,
                    "transient fault must clear after at most {bound} attempts"
                );
            }
        }
        assert!(saw_transient);
    }

    #[test]
    fn rates_scale_fire_frequency() {
        let lo = FaultPlan::uniform(0.1, 77);
        let hi = FaultPlan::uniform(0.9, 77);
        let count = |p: &FaultPlan| {
            (0..1000u64)
                .filter(|&k| p.decide(FaultSite::IcapTransfer, k, 1).is_some())
                .count()
        };
        let (nlo, nhi) = (count(&lo), count(&hi));
        assert!(nlo < nhi, "rate 0.1 fired {nlo}, rate 0.9 fired {nhi}");
        assert!((50..200).contains(&nlo), "~10% of 1000, got {nlo}");
        assert!((800..1000).contains(&nhi), "~90% of 1000, got {nhi}");
    }

    #[test]
    fn corrupt_flips_exactly_one_bit_deterministically() {
        let inj = FaultInjector::from_plan(FaultPlan::uniform(1.0, 3)).scope(9, 1);
        let mut a = vec![0xaau8; 32];
        let mut b = a.clone();
        assert!(inj.corrupt(FaultSite::IcapTransfer, &mut a).is_some());
        assert!(inj.corrupt(FaultSite::IcapTransfer, &mut b).is_some());
        assert_eq!(a, b, "same scope flips the same bit");
        let flipped: u32 = a
            .iter()
            .zip([0xaau8; 32].iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(1), SimTime::from_secs(5));
        assert_eq!(p.backoff_for(2), SimTime::from_secs(10));
        assert_eq!(p.backoff_for(3), SimTime::from_secs(20));
    }

    #[test]
    fn quarantine_inserts_once() {
        let q = Quarantine::new();
        assert!(q.is_empty());
        assert!(q.insert(42, "cad: injected"));
        assert!(!q.insert(42, "again"));
        assert!(q.contains(42));
        assert!(!q.contains(43));
        assert_eq!(q.len(), 1);
        assert_eq!(q.reason(42).as_deref(), Some("cad: injected"));
    }

    #[test]
    fn crash_switch_disabled_admits_everything() {
        let sw = CrashSwitch::disabled();
        assert_eq!(sw.admit(usize::MAX), usize::MAX);
        assert!(!sw.is_tripped());
    }

    #[test]
    fn crash_switch_cuts_at_the_exact_byte_boundary() {
        let sw = CrashSwitch::armed(StoreCrash { after_bytes: 10 });
        assert_eq!(sw.admit(4), 4);
        assert!(!sw.is_tripped());
        // 6 bytes left; a 9-byte write is cut to 6 and trips the switch.
        assert_eq!(sw.admit(9), 6);
        assert!(sw.is_tripped());
        // Dead store: nothing further is admitted.
        assert_eq!(sw.admit(1), 0);
        assert_eq!(sw.admit(0), 0);
    }

    #[test]
    fn crash_switch_exact_budget_write_succeeds_then_dies() {
        let sw = CrashSwitch::armed(StoreCrash { after_bytes: 8 });
        assert_eq!(sw.admit(8), 8);
        assert!(!sw.is_tripped(), "budget spent exactly is not a crash yet");
        assert_eq!(sw.admit(1), 0);
        assert!(sw.is_tripped());
    }

    #[test]
    fn crash_switch_clones_share_the_budget() {
        let sw = CrashSwitch::armed(StoreCrash { after_bytes: 5 });
        let other = sw.clone();
        assert_eq!(sw.admit(3), 3);
        assert_eq!(other.admit(3), 2);
        assert!(sw.is_tripped() && other.is_tripped());
    }

    #[test]
    fn zero_burst_plan_is_identical_to_today_at_every_epoch() {
        let plan = FaultPlan::uniform(0.5, 321);
        for site in [
            FaultSite::CadMap,
            FaultSite::WorkerDeath,
            FaultSite::StoreWal,
        ] {
            for key in 0..100u64 {
                let legacy = plan.decide(site, key, 1);
                for epoch in [0u64, 1, 7, 1000, u64::MAX] {
                    assert_eq!(
                        plan.decide_at(site, key, 1, epoch),
                        legacy,
                        "no overlay: epoch must be ignored"
                    );
                }
            }
        }
    }

    #[test]
    fn bursts_gate_faults_into_windows() {
        let plan = FaultPlan::uniform(0.4, 99).with_bursts(Bursts {
            period: 10,
            width: 3,
            boost: 2.0,
            calm: 0.0,
        });
        let offset = plan.seed % 10;
        let mut in_window = 0usize;
        let mut out_window = 0usize;
        for epoch in 0..200u64 {
            let fired = (0..50u64)
                .filter(|&k| plan.decide_at(FaultSite::CadRoute, k, 1, epoch).is_some())
                .count();
            if (epoch + offset) % 10 < 3 {
                in_window += fired;
            } else {
                assert_eq!(fired, 0, "calm=0 must be dead quiet outside the window");
                out_window += fired;
            }
        }
        assert!(in_window > 0, "boosted windows must fire");
        assert_eq!(out_window, 0);
    }

    #[test]
    fn burst_decisions_are_deterministic_and_vary_per_window() {
        let mk = || {
            FaultPlan::uniform(0.5, 7).with_bursts(Bursts {
                period: 4,
                width: 4,
                boost: 1.0,
                calm: 0.0,
            })
        };
        let (a, b) = (mk(), mk());
        let sample = |p: &FaultPlan, epoch: u64| -> Vec<Option<FaultKind>> {
            (0..100u64)
                .map(|k| p.decide_at(FaultSite::CadMap, k, 1, epoch))
                .collect()
        };
        assert_eq!(sample(&a, 5), sample(&b, 5), "same plan, same decisions");
        assert_ne!(
            sample(&a, 1),
            sample(&a, 2),
            "each epoch draws a fresh victim set"
        );
    }

    #[test]
    fn burst_persistent_faults_persist_within_an_epoch() {
        let plan = FaultPlan::uniform(1.0, 13).with_bursts(Bursts {
            period: 2,
            width: 2,
            boost: 1.0,
            calm: 0.0,
        });
        let mut saw = false;
        for key in 0..200u64 {
            if plan.decide_at(FaultSite::CadMap, key, 1, 3) == Some(FaultKind::Persistent) {
                saw = true;
                for attempt in 1..10 {
                    assert_eq!(
                        plan.decide_at(FaultSite::CadMap, key, attempt, 3),
                        Some(FaultKind::Persistent)
                    );
                }
            }
        }
        assert!(saw);
    }

    #[test]
    fn injector_epoch_threads_through_scope() {
        let plan = FaultPlan::uniform(0.6, 55).with_bursts(Bursts {
            period: 8,
            width: 2,
            boost: 1.5,
            calm: 0.0,
        });
        let inj = FaultInjector::from_plan(plan.clone()).at_epoch(11);
        let scoped = inj.scope(42, 2);
        assert_eq!(
            scoped.decide(FaultSite::CadPlace),
            plan.decide_at(FaultSite::CadPlace, 42, 2, 11),
            "scope() must carry the epoch"
        );
        assert_eq!(
            scoped.at_epoch(12).decide(FaultSite::CadPlace),
            plan.decide_at(FaultSite::CadPlace, 42, 2, 12),
            "at_epoch() must carry key/attempt"
        );
    }

    /// A tenant's fault stream is a pure function of `(plan, tenant id,
    /// epoch, site, key, attempt)`. Whatever the handle saw before
    /// `for_tenant` — other tenants' scopes, other epochs, any admission
    /// order — must not perturb the stream, and a fleet twice the size
    /// must see the same per-tenant schedule.
    #[test]
    fn tenant_streams_invariant_under_admission_order_and_fleet_size() {
        let plan = FaultPlan::uniform(0.5, 2011).with_bursts(Bursts {
            period: 6,
            width: 2,
            boost: 3.0,
            calm: 0.2,
        });
        let sample = |inj: &FaultInjector, tenant: u64| -> Vec<Option<FaultKind>> {
            let t = inj.for_tenant(tenant).at_epoch(tenant);
            let mut out = Vec::new();
            for site in FaultSite::ALL {
                for key in 0..20u64 {
                    for attempt in 1..4u32 {
                        out.push(t.scope(key * 7919, attempt).decide(site));
                    }
                }
            }
            out
        };

        // "Fleet A": tenants admitted 0, 1, 2 in order; "fleet B": a
        // larger fleet admitting in reverse, with unrelated scoping noise
        // on the handle before each tenant session starts.
        let fresh = FaultInjector::from_plan(plan.clone());
        let want: Vec<_> = (0..3u64).map(|t| sample(&fresh, t)).collect();
        let noisy = FaultInjector::from_plan(plan)
            .scope(0xdead_beef, 3)
            .at_epoch(999)
            .for_tenant(17);
        for t in (0..6u64).rev() {
            if t < 3 {
                assert_eq!(
                    sample(&noisy, t),
                    want[t as usize],
                    "tenant {t}: schedule must not depend on handle history, \
                     admission order, or fleet size"
                );
            } else {
                let _ = sample(&noisy, t); // extra tenants are just traffic
            }
        }

        // Distinct tenants draw distinct streams (same plan, same keys).
        assert_ne!(want[0], want[1], "tenants must not share a victim set");
    }

    /// `for_tenant` must change the stream; a handle that never binds a
    /// tenant stays byte-identical to the plan's direct decisions.
    #[test]
    fn tenantless_handle_matches_plan_directly() {
        let plan = FaultPlan::uniform(0.5, 77);
        let inj = FaultInjector::from_plan(plan.clone());
        for key in 0..100u64 {
            assert_eq!(
                inj.scope(key, 1).decide(FaultSite::CadMap),
                plan.decide(FaultSite::CadMap, key, 1),
                "no tenant bound: decisions must match the plan verbatim"
            );
        }
        let bound = inj.for_tenant(0);
        let diverged = (0..100u64).any(|key| {
            bound.scope(key, 1).decide(FaultSite::CadMap) != plan.decide(FaultSite::CadMap, key, 1)
        });
        assert!(diverged, "binding a tenant must re-key the stream");
    }

    #[test]
    fn quarantine_signatures_sorted() {
        let q = Quarantine::new();
        for sig in [9u64, 3, 7, 1] {
            q.insert(sig, "x");
        }
        assert_eq!(q.signatures(), vec![1, 3, 7, 9]);
    }
}
