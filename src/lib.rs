//! # jitise — Just-in-Time Instruction Set Extension
//!
//! Façade crate re-exporting the public API of the `jitise` workspace, a
//! reproduction of Grad & Plessl, *"Just-in-time Instruction Set Extension —
//! Feasibility and Limitations for an FPGA-based Reconfigurable ASIP
//! Architecture"*, RAW/IPDPS 2011.
//!
//! See the individual crates for the subsystems:
//!
//! * [`ir`] — SSA intermediate representation (the "bitcode").
//! * [`vm`] — interpreter, profiler, coverage and kernel analysis.
//! * [`ise`] — instruction-set-extension algorithms and pruning filters.
//! * [`pivpav`] — IP-core database, datapath generator, estimator.
//! * [`cad`] — FPGA CAD tool-flow simulator (map, place, route, bitgen).
//! * [`woolcano`] — the reconfigurable ASIP architecture model.
//! * [`apps`] — the 14 benchmark applications of the paper's evaluation.
//! * [`core`] — the ASIP specialization pipeline, bitstream cache,
//!   break-even analysis, and concurrent JIT runtime.
//! * [`telemetry`] — structured tracing, metrics, and the phase journal
//!   (dual host/simulated clocks; JSONL, text, and Chrome-trace exports).

pub use jitise_apps as apps;
pub use jitise_base as base;
pub use jitise_cad as cad;
pub use jitise_core as core;
pub use jitise_ir as ir;
pub use jitise_ise as ise;
pub use jitise_pivpav as pivpav;
pub use jitise_telemetry as telemetry;
pub use jitise_vm as vm;
pub use jitise_woolcano as woolcano;
