//! Shape-level reproduction checks: the paper's analysis machinery —
//! coverage, kernel, VM model, break-even, Table IV extrapolation —
//! produces the qualitative results the paper reports, on the real apps.

use jitise::apps::App;
use jitise::base::SimTime;
use jitise::core::{
    average_break_even, break_even_basis, evaluate_app, BreakEvenBasis, EvalContext,
};

#[test]
fn embedded_evaluation_reproduces_headline_shape() {
    let ctx = EvalContext::new();
    let mut ratios = Vec::new();
    let mut break_evens = Vec::new();
    let mut bases: Vec<BreakEvenBasis> = Vec::new();
    for app in App::embedded() {
        let ev = evaluate_app(&ctx, &app);

        // Coverage fractions are a partition.
        let s = ev.coverage.live_frac + ev.coverage.dead_frac + ev.coverage.const_frac;
        assert!((s - 1.0).abs() < 1e-9, "{}: coverage sums to {s}", app.name);

        // Kernel: ≥ 90 % of time in a small fraction of the code (the
        // Pareto principle the paper confirms).
        assert!(ev.kernel.time_frac >= 0.90, "{}", app.name);
        assert!(
            ev.kernel.size_frac < 0.75,
            "{}: kernel covers {:.2} of code",
            app.name,
            ev.kernel.size_frac
        );

        // VM overhead small for embedded apps (paper: ~1 %).
        assert!(
            (0.95..1.25).contains(&ev.exec.ratio),
            "{}: VM ratio {}",
            app.name,
            ev.exec.ratio
        );

        ratios.push(ev.asip_ratio_pruned);
        if let Some(be) = ev.break_even {
            break_evens.push(be);
        }
        bases.push(break_even_basis(
            &ctx,
            &ev.coverage,
            &ev.profile,
            &ev.report,
        ));
    }

    // Paper: embedded average pruned speedup ≈ 5x; we require clearly > 1.5
    // with at least one app ≥ 3x (whetstone-style).
    let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 1.5, "embedded avg speedup {avg}");
    assert!(
        ratios.iter().cloned().fold(0.0, f64::max) >= 3.0,
        "best embedded speedup {ratios:?}"
    );

    // Break-even: paper reports minutes-to-hours for embedded apps.
    assert!(!break_evens.is_empty());
    for be in &break_evens {
        assert!(
            be.as_hours_f64() < 48.0,
            "embedded break-even {be} should be < 2 days"
        );
    }

    // Table IV shape on the real bases: monotone in cache rate and tool
    // speedup, and the 30/30 cell improves on the 0/0 cell substantially.
    let base_cell = average_break_even(&bases, 0.0, 0.0, 8, 1);
    let mid_cell = average_break_even(&bases, 0.3, 0.3, 8, 1);
    let best_cell = average_break_even(&bases, 0.9, 0.9, 8, 1);
    assert!(mid_cell < base_cell);
    assert!(best_cell < mid_cell);
    let improvement = base_cell.as_secs_f64() / mid_cell.as_secs_f64().max(1e-9);
    assert!(
        improvement > 1.3,
        "30/30 improvement {improvement} (paper: 1.94x)"
    );
}

#[test]
fn scientific_break_even_dwarfs_embedded() {
    // Paper: "the break even time is five orders of magnitude lower for
    // [embedded] applications" across the full suites. Between these two
    // single representatives we require a conservative >= 20x gap (gzip is
    // the paper's *second-smallest* scientific break-even at 206 days; the
    // full-suite spread is shown by the release-mode table2 binary).
    let ctx = EvalContext::new();
    let emb = evaluate_app(&ctx, &App::build("fft").unwrap());
    let sci = evaluate_app(&ctx, &App::build("164.gzip").unwrap());
    let e = emb.break_even.expect("fft amortizes");
    match sci.break_even {
        None => {} // never amortizes: even stronger than the paper's days
        Some(s) => {
            assert!(
                s.as_secs_f64() > 20.0 * e.as_secs_f64(),
                "gzip {s} vs fft {e}"
            );
        }
    }
    // And the scientific overhead itself is larger (more candidates).
    assert!(
        sci.report.sum_time > emb.report.sum_time
            || sci.report.candidates.len() >= emb.report.candidates.len()
    );
}

#[test]
fn compile_time_model_shows_28x_gap_shape() {
    // Table I RATIO row: scientific compile 28x slower on average.
    let sci: Vec<SimTime> = jitise::apps::scientific_names()
        .into_iter()
        .map(|n| App::build(n).unwrap().compile_time_model())
        .collect();
    let emb: Vec<SimTime> = jitise::apps::embedded_names()
        .into_iter()
        .map(|n| App::build(n).unwrap().compile_time_model())
        .collect();
    let avg = |xs: &[SimTime]| xs.iter().map(|t| t.as_secs_f64()).sum::<f64>() / xs.len() as f64;
    let ratio = avg(&sci) / avg(&emb);
    assert!(
        (8.0..80.0).contains(&ratio),
        "compile-time ratio {ratio} (paper: 28x)"
    );
}

#[test]
fn vm_beats_native_for_some_apps() {
    // Paper: 179.art and 473.astar ran faster on the VM than native.
    let ctx = EvalContext::new();
    let art = evaluate_app(&ctx, &App::build("179.art").unwrap());
    assert!(
        art.exec.ratio < 1.0,
        "179.art VM ratio {} should be < 1 (paper: 0.94)",
        art.exec.ratio
    );
}
