//! Property-based cross-crate equivalence tests:
//!
//! * the `-O3` pass pipeline preserves interpreter results on randomized
//!   programs;
//! * MAXMISO invariants hold on randomized data-flow graphs;
//! * freezing + patching a candidate preserves program results under the
//!   Woolcano custom-instruction handler.

use jitise::ir::passes::{optimize_function, OptLevel};
use jitise::ir::{
    BinOp, BlockId, CmpOp, Dfg, FuncId, FunctionBuilder, Module, Operand as Op, Type,
};
use jitise::ise::{maxmiso, ForbiddenPolicy};
use jitise::vm::{BlockKey, CostModel, CustomHandler, Interpreter, RunConfig, Value, VmTier};
use jitise::woolcano::freeze_and_patch;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A recipe for one random straight-line+loop integer program.
#[derive(Debug, Clone)]
struct ProgramRecipe {
    ops: Vec<(u8, i32)>,
    loop_iters: u8,
}

fn recipe_strategy() -> impl Strategy<Value = ProgramRecipe> {
    (prop::collection::vec((0u8..7, -50i32..50), 1..24), 1u8..12)
        .prop_map(|(ops, loop_iters)| ProgramRecipe { ops, loop_iters })
}

/// Builds a module from a recipe. The program folds a value through the
/// op sequence inside a counted loop, with a memory cell in the middle so
/// DCE/CSE have real work without removing everything.
fn build(recipe: &ProgramRecipe) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(17), cell);
    b.counted_loop(
        "i",
        Op::ci32(0),
        Op::ci32(recipe.loop_iters as i32),
        |b, i| {
            let mut v = b.load(Type::I32, cell);
            v = b.add(v, i);
            for &(op, k) in &recipe.ops {
                let kc = Op::ci32(k);
                v = match op {
                    0 => b.add(v, kc),
                    1 => b.sub(v, kc),
                    2 => b.mul(v, kc),
                    3 => b.xor(v, kc),
                    4 => b.and(v, Op::ci32(k | 0xff)),
                    5 => b.or(v, kc),
                    _ => {
                        let c = b.cmp(CmpOp::Slt, v, kc);
                        b.select(c, kc, v)
                    }
                };
                // Sprinkle folding material.
                v = b.add(v, Op::ci32(0));
            }
            b.store(v, cell);
        },
    );
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("prop");
    m.add_func(b.finish());
    m
}

fn run_module(m: &Module, arg: i64) -> Option<Value> {
    let mut vm = Interpreter::new(m);
    vm.run("main", &[Value::I(arg)]).expect("program runs").ret
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn o3_preserves_program_results(recipe in recipe_strategy(), arg in -100i64..100) {
        let base = build(&recipe);
        let mut optimized = base.clone();
        jitise::ir::passes::optimize_module(&mut optimized, OptLevel::O3);
        jitise::ir::verify::verify_module(&optimized).expect("optimized module verifies");
        prop_assert_eq!(run_module(&base, arg), run_module(&optimized, arg));
        // O3 never grows the program.
        prop_assert!(optimized.num_insts() <= base.num_insts());
    }

    #[test]
    fn maxmiso_invariants_on_random_blocks(recipe in recipe_strategy()) {
        let m = build(&recipe);
        let f = m.func(FuncId(0));
        for bid in f.block_ids() {
            let dfg = Dfg::build(f, bid);
            let policy = ForbiddenPolicy::default();
            let result = maxmiso(f, &dfg, BlockKey::new(FuncId(0), bid), &policy, 1);
            let forbidden = policy.mask(&dfg);
            let mut covered = vec![0u32; dfg.len()];
            for cand in &result.candidates {
                prop_assert_eq!(cand.outputs, 1, "single output");
                prop_assert!(cand.is_convex(&dfg), "convex");
                for &n in &cand.nodes {
                    prop_assert!(!forbidden[n as usize], "no forbidden nodes");
                    covered[n as usize] += 1;
                }
            }
            for (i, &c) in covered.iter().enumerate() {
                prop_assert!(c <= 1, "node {} in {} MISOs", i, c);
                if !forbidden[i] {
                    prop_assert_eq!(c, 1, "valid node {} uncovered", i);
                }
            }
        }
    }

    #[test]
    fn patching_preserves_results(recipe in recipe_strategy(), arg in -100i64..100) {
        let base = build(&recipe);
        let mut patched = base.clone();
        // Find the largest candidate anywhere and patch it.
        let f0 = patched.func(FuncId(0)).clone();
        let mut best: Option<(BlockId, jitise::ise::Candidate)> = None;
        for bid in f0.block_ids() {
            let dfg = Dfg::build(&f0, bid);
            for c in maxmiso(
                &f0, &dfg, BlockKey::new(FuncId(0), bid), &ForbiddenPolicy::default(), 2,
            ).candidates {
                if c.outputs == 1
                    && best.as_ref().map(|(_, b)| c.len() > b.len()).unwrap_or(true)
                {
                    best = Some((bid, c));
                }
            }
        }
        prop_assume!(best.is_some());
        let (bid, cand) = best.unwrap();
        let dfg = Dfg::build(&f0, bid);
        let (sem, _) = freeze_and_patch(patched.func_mut(FuncId(0)), &dfg, &cand, 0)
            .expect("patch");
        jitise::ir::verify::verify_module(&patched).expect("patched verifies");

        struct H(jitise::woolcano::CiSemantics);
        impl CustomHandler for H {
            fn exec_custom(&self, _s: u32, args: &[Value]) -> jitise::base::Result<(Value, u64)> {
                Ok((self.0.eval(args)?, 1))
            }
        }
        let h = H(sem);
        let mut vm = Interpreter::new(&patched);
        vm.set_custom_handler(&h);
        let got = vm.run("main", &[Value::I(arg)]).expect("patched runs").ret;
        prop_assert_eq!(run_module(&base, arg), got);
    }

    #[test]
    fn optimizer_is_idempotent(recipe in recipe_strategy()) {
        let mut m = build(&recipe);
        jitise::ir::passes::optimize_module(&mut m, OptLevel::O3);
        let once = m.clone();
        let reports = jitise::ir::passes::optimize_module(&mut m, OptLevel::O3);
        // A second run must converge immediately (no oscillation).
        for r in &reports {
            prop_assert!(r.iterations <= 2, "second O3 run iterated {}", r.iterations);
        }
        prop_assert_eq!(m.num_insts(), once.num_insts());
    }
}

// ---------------------------------------------------------------------------
// Fast-tier differential suite: the pre-decoded dispatch tier must be
// bit-identical to the reference interpreter in results, cycles, steps,
// per-block profiles, and error strings — on success paths AND on traps
// (division by zero, fuel exhaustion, out-of-bounds memory).
// ---------------------------------------------------------------------------

/// A control-flow-heavy module exercising everything the fast tier decodes
/// specially: a cross-function call, a switch with duplicate case targets,
/// selects (including an f64 round-trip), loop phis, and memory traffic.
/// `oob` routes the switch default through an out-of-bounds load.
fn build_tiered(recipe: &ProgramRecipe, oob: bool) -> Module {
    let mut m = Module::new("tiered");

    let mut h = FunctionBuilder::new("helper", vec![Type::I64], Type::I64);
    let x = Op::Arg(0);
    let t = h.mul(x, Op::ci64(3));
    let t = h.add(t, Op::ci64(7));
    let t = h.xor(t, x);
    h.ret(t);
    let helper = m.add_func(h.finish());

    let mut b = FunctionBuilder::new("main", vec![Type::I64], Type::I64);
    let arg = Op::Arg(0);
    let cell = b.alloca(8);
    b.store(Op::ci64(17), cell);
    let c0 = b.new_block("case.call");
    let c1 = b.new_block("case.select");
    let cdiv = b.new_block("case.div");
    let cdef = b.new_block("default");
    let join = b.new_block("join");
    // Cases 1 and 2 share a target: the decoder must dedup the edge.
    b.switch(arg, vec![(0, c0), (1, c1), (2, c1), (3, cdiv)], cdef);

    b.switch_to(c0);
    let x0 = b.call(helper, vec![arg], Type::I64);
    b.br(join);

    b.switch_to(c1);
    let cnd = b.cmp(CmpOp::Slt, arg, Op::ci64(2));
    let s = b.select(cnd, Op::ci64(5), arg);
    let f = b.sitofp(arg, Type::F64);
    let g = b.fmul(f, Op::cf64(1.5));
    let xi = b.fptosi(g, Type::I64);
    let x1 = b.add(s, xi);
    b.br(join);

    b.switch_to(cdiv);
    // Traps with "division by zero" when the selector is exactly 3.
    let d = b.sub(arg, Op::ci64(3));
    let x2 = b.sdiv(Op::ci64(100), d);
    b.br(join);

    b.switch_to(cdef);
    let x3 = if oob {
        // 8 MiB past a 1 MiB stack: an out-of-bounds load.
        let wild = b.gep(cell, Op::ci64(1 << 20), 8);
        b.load(Type::I64, wild)
    } else {
        b.srem(arg, Op::ci64(7))
    };
    b.br(join);

    b.switch_to(join);
    let merged = b.phi(Type::I64);
    b.add_incoming(merged, c0, x0);
    b.add_incoming(merged, c1, x1);
    b.add_incoming(merged, cdiv, x2);
    b.add_incoming(merged, cdef, x3);
    let cell2 = b.alloca(4);
    b.store(Op::ci32(17), cell2);
    b.counted_loop(
        "i",
        Op::ci32(0),
        Op::ci32(recipe.loop_iters as i32),
        |b, i| {
            let mut v = b.load(Type::I32, cell2);
            v = b.add(v, i);
            for &(op, k) in &recipe.ops {
                let kc = Op::ci32(k);
                v = match op {
                    0 => b.add(v, kc),
                    1 => b.sub(v, kc),
                    2 => b.mul(v, kc),
                    3 => b.xor(v, kc),
                    4 => b.and(v, Op::ci32(k | 0xff)),
                    5 => b.or(v, kc),
                    _ => {
                        let c = b.cmp(CmpOp::Slt, v, kc);
                        b.select(c, kc, v)
                    }
                };
            }
            b.store(v, cell2);
        },
    );
    let folded = b.load(Type::I32, cell2);
    let folded = b.sext(folded, Type::I64);
    let out = b.add(folded, merged);
    b.ret(out);
    m.add_func(b.finish());
    m
}

/// Runs `main` on both tiers and asserts every observable agrees:
/// `Ok` outcomes compare `ret`/`cycles`/`steps`, `Err` outcomes compare
/// the exact error string, and per-block profiles must be equal either way.
fn assert_tiers_agree(m: &Module, args: &[Value], max_steps: u64) -> Result<(), TestCaseError> {
    let run = |tier: VmTier| {
        let cfg = RunConfig {
            max_steps,
            ..RunConfig::default()
        };
        let mut vm = Interpreter::with_config(m, CostModel::ppc405(), cfg);
        vm.set_tier(tier);
        let r = vm.run("main", args).map_err(|e| e.to_string());
        (r, vm.take_profile())
    };
    let (ri, pi) = run(VmTier::Interp);
    let (rf, pf) = run(VmTier::Fast);
    prop_assert_eq!(ri, rf, "outcome diverged between tiers");
    prop_assert_eq!(pi, pf, "profile diverged between tiers");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_tier_matches_interpreter(
        recipe in recipe_strategy(),
        sel in -4i64..8,
        fuel in any::<bool>(),
        oob in any::<bool>(),
    ) {
        let m = build_tiered(&recipe, oob);
        jitise::ir::verify::verify_module(&m).expect("tiered module verifies");
        // A tiny budget trips "step budget ... exhausted" mid-loop; the
        // trap point and the partial profile must agree across tiers.
        let max_steps = if fuel { 120 } else { RunConfig::default().max_steps };
        assert_tiers_agree(&m, &[Value::I(sel)], max_steps)?;

        // The optimized module reshapes blocks and phis; the tiers must
        // still agree on it.
        let mut o = m.clone();
        jitise::ir::passes::optimize_module(&mut o, OptLevel::O3);
        assert_tiers_agree(&o, &[Value::I(sel)], max_steps)?;
    }
}

#[test]
fn tier_trap_sanity() {
    // One deterministic instance per trap class, debuggable without
    // proptest shrinking.
    let recipe = ProgramRecipe {
        ops: vec![(0, 3), (2, 5)],
        loop_iters: 5,
    };
    let full = RunConfig::default().max_steps;
    let m = build_tiered(&recipe, false);
    for sel in [-4, 0, 1, 2, 5] {
        assert_tiers_agree(&m, &[Value::I(sel)], full).unwrap();
    }
    // Division by zero (selector 3), fuel exhaustion, out-of-bounds load.
    assert_tiers_agree(&m, &[Value::I(3)], full).unwrap();
    assert_tiers_agree(&m, &[Value::I(0)], 40).unwrap();
    let moob = build_tiered(&recipe, true);
    assert_tiers_agree(&moob, &[Value::I(6)], full).unwrap();
}

#[test]
fn sanity_fixed_program() {
    // One deterministic instance to keep failures debuggable without
    // proptest shrinking.
    let recipe = ProgramRecipe {
        ops: vec![(0, 3), (2, 5), (3, 9), (6, 20)],
        loop_iters: 7,
    };
    let base = build(&recipe);
    let mut optimized = base.clone();
    let f = optimized.func_mut(FuncId(0));
    optimize_function(f, OptLevel::O3);
    assert_eq!(run_module(&base, 5), run_module(&optimized, 5));
    // Quieten the unused-import lint for BinOp, used only in debug paths.
    let _ = BinOp::Add;
}
