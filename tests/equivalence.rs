//! Property-based cross-crate equivalence tests:
//!
//! * the `-O3` pass pipeline preserves interpreter results on randomized
//!   programs;
//! * MAXMISO invariants hold on randomized data-flow graphs;
//! * freezing + patching a candidate preserves program results under the
//!   Woolcano custom-instruction handler.

use jitise::ir::passes::{optimize_function, OptLevel};
use jitise::ir::{
    BinOp, BlockId, CmpOp, Dfg, FuncId, FunctionBuilder, Module, Operand as Op, Type,
};
use jitise::ise::{maxmiso, ForbiddenPolicy};
use jitise::vm::{BlockKey, CustomHandler, Interpreter, Value};
use jitise::woolcano::freeze_and_patch;
use proptest::prelude::*;

/// A recipe for one random straight-line+loop integer program.
#[derive(Debug, Clone)]
struct ProgramRecipe {
    ops: Vec<(u8, i32)>,
    loop_iters: u8,
}

fn recipe_strategy() -> impl Strategy<Value = ProgramRecipe> {
    (prop::collection::vec((0u8..7, -50i32..50), 1..24), 1u8..12)
        .prop_map(|(ops, loop_iters)| ProgramRecipe { ops, loop_iters })
}

/// Builds a module from a recipe. The program folds a value through the
/// op sequence inside a counted loop, with a memory cell in the middle so
/// DCE/CSE have real work without removing everything.
fn build(recipe: &ProgramRecipe) -> Module {
    let mut b = FunctionBuilder::new("main", vec![Type::I32], Type::I32);
    let cell = b.alloca(4);
    b.store(Op::ci32(17), cell);
    b.counted_loop(
        "i",
        Op::ci32(0),
        Op::ci32(recipe.loop_iters as i32),
        |b, i| {
            let mut v = b.load(Type::I32, cell);
            v = b.add(v, i);
            for &(op, k) in &recipe.ops {
                let kc = Op::ci32(k);
                v = match op {
                    0 => b.add(v, kc),
                    1 => b.sub(v, kc),
                    2 => b.mul(v, kc),
                    3 => b.xor(v, kc),
                    4 => b.and(v, Op::ci32(k | 0xff)),
                    5 => b.or(v, kc),
                    _ => {
                        let c = b.cmp(CmpOp::Slt, v, kc);
                        b.select(c, kc, v)
                    }
                };
                // Sprinkle folding material.
                v = b.add(v, Op::ci32(0));
            }
            b.store(v, cell);
        },
    );
    let out = b.load(Type::I32, cell);
    b.ret(out);
    let mut m = Module::new("prop");
    m.add_func(b.finish());
    m
}

fn run_module(m: &Module, arg: i64) -> Option<Value> {
    let mut vm = Interpreter::new(m);
    vm.run("main", &[Value::I(arg)]).expect("program runs").ret
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn o3_preserves_program_results(recipe in recipe_strategy(), arg in -100i64..100) {
        let base = build(&recipe);
        let mut optimized = base.clone();
        jitise::ir::passes::optimize_module(&mut optimized, OptLevel::O3);
        jitise::ir::verify::verify_module(&optimized).expect("optimized module verifies");
        prop_assert_eq!(run_module(&base, arg), run_module(&optimized, arg));
        // O3 never grows the program.
        prop_assert!(optimized.num_insts() <= base.num_insts());
    }

    #[test]
    fn maxmiso_invariants_on_random_blocks(recipe in recipe_strategy()) {
        let m = build(&recipe);
        let f = m.func(FuncId(0));
        for bid in f.block_ids() {
            let dfg = Dfg::build(f, bid);
            let policy = ForbiddenPolicy::default();
            let result = maxmiso(f, &dfg, BlockKey::new(FuncId(0), bid), &policy, 1);
            let forbidden = policy.mask(&dfg);
            let mut covered = vec![0u32; dfg.len()];
            for cand in &result.candidates {
                prop_assert_eq!(cand.outputs, 1, "single output");
                prop_assert!(cand.is_convex(&dfg), "convex");
                for &n in &cand.nodes {
                    prop_assert!(!forbidden[n as usize], "no forbidden nodes");
                    covered[n as usize] += 1;
                }
            }
            for (i, &c) in covered.iter().enumerate() {
                prop_assert!(c <= 1, "node {} in {} MISOs", i, c);
                if !forbidden[i] {
                    prop_assert_eq!(c, 1, "valid node {} uncovered", i);
                }
            }
        }
    }

    #[test]
    fn patching_preserves_results(recipe in recipe_strategy(), arg in -100i64..100) {
        let base = build(&recipe);
        let mut patched = base.clone();
        // Find the largest candidate anywhere and patch it.
        let f0 = patched.func(FuncId(0)).clone();
        let mut best: Option<(BlockId, jitise::ise::Candidate)> = None;
        for bid in f0.block_ids() {
            let dfg = Dfg::build(&f0, bid);
            for c in maxmiso(
                &f0, &dfg, BlockKey::new(FuncId(0), bid), &ForbiddenPolicy::default(), 2,
            ).candidates {
                if c.outputs == 1
                    && best.as_ref().map(|(_, b)| c.len() > b.len()).unwrap_or(true)
                {
                    best = Some((bid, c));
                }
            }
        }
        prop_assume!(best.is_some());
        let (bid, cand) = best.unwrap();
        let dfg = Dfg::build(&f0, bid);
        let (sem, _) = freeze_and_patch(patched.func_mut(FuncId(0)), &dfg, &cand, 0)
            .expect("patch");
        jitise::ir::verify::verify_module(&patched).expect("patched verifies");

        struct H(jitise::woolcano::CiSemantics);
        impl CustomHandler for H {
            fn exec_custom(&self, _s: u32, args: &[Value]) -> jitise::base::Result<(Value, u64)> {
                Ok((self.0.eval(args)?, 1))
            }
        }
        let h = H(sem);
        let mut vm = Interpreter::new(&patched);
        vm.set_custom_handler(&h);
        let got = vm.run("main", &[Value::I(arg)]).expect("patched runs").ret;
        prop_assert_eq!(run_module(&base, arg), got);
    }

    #[test]
    fn optimizer_is_idempotent(recipe in recipe_strategy()) {
        let mut m = build(&recipe);
        jitise::ir::passes::optimize_module(&mut m, OptLevel::O3);
        let once = m.clone();
        let reports = jitise::ir::passes::optimize_module(&mut m, OptLevel::O3);
        // A second run must converge immediately (no oscillation).
        for r in &reports {
            prop_assert!(r.iterations <= 2, "second O3 run iterated {}", r.iterations);
        }
        prop_assert_eq!(m.num_insts(), once.num_insts());
    }
}

#[test]
fn sanity_fixed_program() {
    // One deterministic instance to keep failures debuggable without
    // proptest shrinking.
    let recipe = ProgramRecipe {
        ops: vec![(0, 3), (2, 5), (3, 9), (6, 20)],
        loop_iters: 7,
    };
    let base = build(&recipe);
    let mut optimized = base.clone();
    let f = optimized.func_mut(FuncId(0));
    optimize_function(f, OptLevel::O3);
    assert_eq!(run_module(&base, 5), run_module(&optimized, 5));
    // Quieten the unused-import lint for BinOp, used only in debug paths.
    let _ = BinOp::Add;
}
