//! End-to-end integration: the full JIT-ISE pipeline over real benchmark
//! applications, spanning every crate — apps → vm → ise → pivpav → cad →
//! woolcano → core.

use jitise::apps::App;
use jitise::base::SimTime;
use jitise::core::{specialize, BitstreamCache, EvalContext, SpecializeConfig};
use jitise::vm::{Interpreter, Value};
use jitise::woolcano::{measure_speedup, Woolcano};

fn specialize_app(
    ctx: &EvalContext,
    cache: &BitstreamCache,
    app: &App,
) -> (jitise::ir::Module, Woolcano, jitise::core::SpecializeReport) {
    let profile = app.run_dataset(0);
    let mut m = app.module.clone();
    let machine = Woolcano::new(512);
    let report = specialize(
        &mut m,
        &profile,
        &machine,
        &ctx.estimator,
        &ctx.db,
        &ctx.netlists,
        cache,
        &SpecializeConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    (m, machine, report)
}

#[test]
fn every_embedded_app_specializes_and_stays_correct() {
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    for app in App::embedded() {
        let (patched, machine, report) = specialize_app(&ctx, &cache, &app);
        assert!(
            !report.candidates.is_empty(),
            "{}: no candidates selected",
            app.name
        );
        // Same results on the smaller dataset, plus a measured speedup.
        let args = &app.datasets[1].args;
        let meas = measure_speedup(&app.module, &patched, &machine, "main", args)
            .unwrap_or_else(|e| panic!("{}: diverged: {e}", app.name));
        // Marginal CIs (kept deliberately, see DESIGN.md) may cost up to
        // marginal_slack extra cycles each; the paper's equivalents show
        // as 1.00 rows. Require no worse than a 3 % net slowdown.
        assert!(
            meas.speedup >= 0.97,
            "{}: specialized slower ({:.3}x)",
            app.name,
            meas.speedup
        );
    }
}

#[test]
fn embedded_speedups_match_paper_ordering() {
    // Paper Table II pruned ratios: whetstone (15.43) > fft (2.40) >
    // adpcm (1.08); sor's ceiling is high but its pruned ratio is 1.00.
    // We assert the dominant ordering: whetstone is the best, adpcm the
    // most modest of {whetstone, fft, adpcm}.
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let mut ratios = std::collections::HashMap::new();
    for name in ["whetstone", "fft", "adpcm"] {
        let app = App::build(name).unwrap();
        let (_, _, report) = specialize_app(&ctx, &cache, &app);
        ratios.insert(name, report.search.asip_ratio);
    }
    assert!(
        ratios["whetstone"] > ratios["fft"],
        "whetstone {} should beat fft {}",
        ratios["whetstone"],
        ratios["fft"]
    );
    assert!(
        ratios["fft"] > ratios["adpcm"],
        "fft {} should beat adpcm {}",
        ratios["fft"],
        ratios["adpcm"]
    );
}

#[test]
fn bitstream_cache_is_shared_across_apps_and_sessions() {
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let app = App::build("fft").unwrap();
    let (_, _, r1) = specialize_app(&ctx, &cache, &app);
    assert_eq!(r1.cache_hits, 0);
    assert!(r1.sum_time > SimTime::ZERO);
    // Second session: all candidates hit; zero generation overhead.
    let (_, _, r2) = specialize_app(&ctx, &cache, &app);
    assert_eq!(r2.cache_hits, r2.candidates.len());
    assert_eq!(r2.sum_time, SimTime::ZERO);
    // Cache image survives a serialization roundtrip.
    let bytes = cache.to_bytes();
    let restored = BitstreamCache::from_bytes(&bytes).unwrap();
    assert_eq!(restored.len(), cache.len());
}

#[test]
fn small_scientific_app_specializes() {
    // 429.mcf is the smallest scientific app (5 candidates in the paper).
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let app = App::build("429.mcf").unwrap();
    let (patched, machine, report) = specialize_app(&ctx, &cache, &app);
    assert!(!report.candidates.is_empty());
    // Scientific apps: modest speedup (paper: 1.00-1.41 pruned).
    assert!(report.search.asip_ratio >= 1.0);
    assert!(report.search.asip_ratio < 3.0);
    let meas = measure_speedup(
        &app.module,
        &patched,
        &machine,
        "main",
        &app.datasets[1].args,
    )
    .unwrap();
    assert!(meas.speedup >= 0.97, "mcf measured {:.3}x", meas.speedup);
}

#[test]
fn patched_binary_runs_without_machine_fails_cleanly() {
    let ctx = EvalContext::new();
    let cache = BitstreamCache::new();
    let app = App::build("sor").unwrap();
    let (patched, _machine, _) = specialize_app(&ctx, &cache, &app);
    // Running the patched binary WITHOUT a custom handler must error, not
    // crash or silently mis-execute.
    let mut vm = Interpreter::new(&patched);
    let err = vm.run("main", &[Value::I(2)]).unwrap_err();
    assert!(err.to_string().contains("custom instruction"));
}
